// Package logic implements two-level (sum-of-products) Boolean algebra in
// positional-cube notation, together with an espresso-style heuristic
// minimizer that accepts don't-care sets.
//
// The package is the workhorse behind node functions in internal/network and
// behind the retiming-induced don't-care simplification of internal/core.
// Every function is pure Boolean algebra over a fixed variable count; callers
// keep track of what the variables mean.
package logic

import (
	"fmt"
	"strings"
)

// Lit is the value of one variable inside a cube, encoded positionally:
// bit 0 set means the variable may be 0, bit 1 set means it may be 1.
type Lit byte

const (
	// LitNone is the empty (contradictory) literal; a cube containing it
	// represents the empty set of minterms.
	LitNone Lit = 0
	// LitNeg is the negative literal x'.
	LitNeg Lit = 1
	// LitPos is the positive literal x.
	LitPos Lit = 2
	// LitBoth means the variable is absent from the cube (don't care).
	LitBoth Lit = 3
)

const varsPerWord = 32

// Cube is a product term over N Boolean variables in positional notation.
// Unused high bits of the last word are kept at "11" so that bitwise
// operations remain uniform.
type Cube struct {
	N int
	w []uint64
}

// NewCube returns the universal cube (all variables don't-care) over n vars.
func NewCube(n int) Cube {
	if n < 0 {
		panic("logic: negative variable count")
	}
	nw := (n + varsPerWord - 1) / varsPerWord
	if nw == 0 {
		nw = 1
	}
	w := make([]uint64, nw)
	for i := range w {
		w[i] = ^uint64(0)
	}
	return Cube{N: n, w: w}
}

// Clone returns a deep copy of c.
func (c Cube) Clone() Cube {
	w := make([]uint64, len(c.w))
	copy(w, c.w)
	return Cube{N: c.N, w: w}
}

// Lit returns the literal of variable v in c.
func (c Cube) Lit(v int) Lit {
	word, off := v/varsPerWord, uint(v%varsPerWord)*2
	return Lit((c.w[word] >> off) & 3)
}

// SetLit sets the literal of variable v in place.
func (c Cube) SetLit(v int, l Lit) {
	word, off := v/varsPerWord, uint(v%varsPerWord)*2
	c.w[word] = (c.w[word] &^ (3 << off)) | (uint64(l) << off)
}

// WithLit returns a copy of c with variable v set to l.
func (c Cube) WithLit(v int, l Lit) Cube {
	d := c.Clone()
	d.SetLit(v, l)
	return d
}

// IsEmpty reports whether the cube denotes the empty set (some variable has
// the contradictory literal 00).
func (c Cube) IsEmpty() bool {
	for v := 0; v < c.N; v++ {
		if c.Lit(v) == LitNone {
			return true
		}
	}
	return false
}

// IsFull reports whether the cube is the universal cube.
func (c Cube) IsFull() bool {
	for _, w := range c.w {
		if w != ^uint64(0) {
			return false
		}
	}
	return true
}

// And returns the intersection of a and b and whether it is non-empty.
func (a Cube) And(b Cube) (Cube, bool) {
	if a.N != b.N {
		panic("logic: cube size mismatch")
	}
	r := Cube{N: a.N, w: make([]uint64, len(a.w))}
	empty := false
	for i := range a.w {
		r.w[i] = a.w[i] & b.w[i]
		// A variable became 00 iff both bit pairs lost all bits.
		x := r.w[i]
		// pairs where both bits are zero:
		pairZero := ^(x | x>>1) & 0x5555555555555555
		if pairZero != 0 {
			empty = true
		}
	}
	if empty {
		// Confirm the zero pair is within range (unused bits are 11, so
		// they never produce zero pairs; still be defensive).
		if r.IsEmpty() {
			return r, false
		}
	}
	return r, true
}

// ContainsCube reports whether a ⊇ b as sets of minterms (b's bits are a
// subset of a's bits and b is non-empty).
func (a Cube) ContainsCube(b Cube) bool {
	for i := range a.w {
		if b.w[i]&^a.w[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports structural equality.
func (a Cube) Equal(b Cube) bool {
	if a.N != b.N {
		return false
	}
	for i := range a.w {
		if a.w[i] != b.w[i] {
			return false
		}
	}
	return true
}

// Distance returns the number of variables in which a and b have disjoint
// literals. Distance 0 means the cubes intersect; distance 1 means consensus
// exists.
func (a Cube) Distance(b Cube) int {
	d := 0
	for i := range a.w {
		x := a.w[i] & b.w[i]
		pairZero := ^(x | x>>1) & 0x5555555555555555
		for pairZero != 0 {
			d++
			pairZero &= pairZero - 1
		}
	}
	return d
}

// CountLits returns the number of variables bound to a single phase.
func (c Cube) CountLits() int {
	n := 0
	for v := 0; v < c.N; v++ {
		if l := c.Lit(v); l == LitNeg || l == LitPos {
			n++
		}
	}
	return n
}

// Supercube returns the smallest cube containing both a and b (bitwise OR).
func (a Cube) Supercube(b Cube) Cube {
	r := Cube{N: a.N, w: make([]uint64, len(a.w))}
	for i := range a.w {
		r.w[i] = a.w[i] | b.w[i]
	}
	return r
}

// Cofactor returns the cofactor of cube a with respect to cube c, and whether
// it is non-empty. Variables bound in c become don't-care in the result;
// if a and c conflict the cofactor is empty.
func (a Cube) Cofactor(c Cube) (Cube, bool) {
	if a.Distance(c) > 0 {
		return Cube{}, false
	}
	r := a.Clone()
	for v := 0; v < a.N; v++ {
		if c.Lit(v) != LitBoth {
			r.SetLit(v, LitBoth)
		}
	}
	return r, true
}

// Eval evaluates the cube as a product term under a complete assignment.
func (c Cube) Eval(assign []bool) bool {
	for v := 0; v < c.N; v++ {
		switch c.Lit(v) {
		case LitNeg:
			if assign[v] {
				return false
			}
		case LitPos:
			if !assign[v] {
				return false
			}
		case LitNone:
			return false
		}
	}
	return true
}

// String renders the cube in the classic espresso input form, e.g. "1-0".
func (c Cube) String() string {
	var b strings.Builder
	for v := 0; v < c.N; v++ {
		switch c.Lit(v) {
		case LitNeg:
			b.WriteByte('0')
		case LitPos:
			b.WriteByte('1')
		case LitBoth:
			b.WriteByte('-')
		case LitNone:
			b.WriteByte('!')
		}
	}
	return b.String()
}

// ParseCube parses a string of '0', '1', '-' characters into a cube.
func ParseCube(s string) (Cube, error) {
	c := NewCube(len(s))
	for i, ch := range s {
		switch ch {
		case '0':
			c.SetLit(i, LitNeg)
		case '1':
			c.SetLit(i, LitPos)
		case '-', '2':
			// don't care, already set
		default:
			return Cube{}, fmt.Errorf("logic: invalid cube character %q in %q", ch, s)
		}
	}
	return c, nil
}
