package logic

import (
	"testing"
)

// truthTable enumerates all 2^n assignments of a cover for brute-force
// functional comparisons in tests.
func truthTable(f *Cover) []bool {
	n := f.N
	out := make([]bool, 1<<uint(n))
	assign := make([]bool, n)
	for m := 0; m < 1<<uint(n); m++ {
		for v := 0; v < n; v++ {
			assign[v] = m&(1<<uint(v)) != 0
		}
		out[m] = f.Eval(assign)
	}
	return out
}

func sameFunction(t *testing.T, f, g *Cover) {
	t.Helper()
	tf, tg := truthTable(f), truthTable(g)
	for m := range tf {
		if tf[m] != tg[m] {
			t.Fatalf("functions differ at minterm %b:\nf=\n%v\ng=\n%v", m, f, g)
		}
	}
}

func TestCubeBasics(t *testing.T) {
	c := NewCube(5)
	if !c.IsFull() {
		t.Fatal("new cube must be full")
	}
	c.SetLit(0, LitPos)
	c.SetLit(3, LitNeg)
	if c.Lit(0) != LitPos || c.Lit(3) != LitNeg || c.Lit(1) != LitBoth {
		t.Fatalf("literal round-trip failed: %v", c)
	}
	if c.CountLits() != 2 {
		t.Fatalf("CountLits = %d, want 2", c.CountLits())
	}
	if c.String() != "1--0-" {
		t.Fatalf("String = %q", c.String())
	}
	p, err := ParseCube("1--0-")
	if err != nil || !p.Equal(c) {
		t.Fatalf("ParseCube round-trip failed: %v %v", p, err)
	}
}

func TestCubeIntersection(t *testing.T) {
	a, _ := ParseCube("1-0")
	b, _ := ParseCube("-10")
	r, ok := a.And(b)
	if !ok || r.String() != "110" {
		t.Fatalf("And = %v ok=%v", r, ok)
	}
	c, _ := ParseCube("0--")
	if _, ok := a.And(c); ok {
		t.Fatal("disjoint cubes must intersect empty")
	}
	if a.Distance(c) != 1 {
		t.Fatalf("Distance = %d, want 1", a.Distance(c))
	}
}

func TestCubeContains(t *testing.T) {
	big, _ := ParseCube("1--")
	small, _ := ParseCube("1-0")
	if !big.ContainsCube(small) {
		t.Fatal("1-- must contain 1-0")
	}
	if small.ContainsCube(big) {
		t.Fatal("1-0 must not contain 1--")
	}
}

func TestCubeBeyondOneWord(t *testing.T) {
	// 40 variables spans two uint64 words.
	c := NewCube(40)
	c.SetLit(35, LitPos)
	c.SetLit(2, LitNeg)
	if c.Lit(35) != LitPos || c.Lit(2) != LitNeg {
		t.Fatal("multi-word literal access broken")
	}
	d := NewCube(40)
	d.SetLit(35, LitNeg)
	if c.Distance(d) != 1 {
		t.Fatalf("multi-word distance = %d", c.Distance(d))
	}
}

func TestTautology(t *testing.T) {
	cases := []struct {
		n     int
		cubes []string
		want  bool
	}{
		{1, []string{"0", "1"}, true},
		{1, []string{"1"}, false},
		{2, []string{"1-", "01", "00"}, true},
		{2, []string{"1-", "01"}, false},
		{3, []string{"---"}, true},
		{3, []string{"1--", "0--"}, true},
		{3, []string{"11-", "0--", "10-"}, true},
		{3, []string{"11-", "0--", "100"}, false},
		{0, nil, false},
	}
	for i, tc := range cases {
		f := MustParseCover(tc.n, tc.cubes...)
		if got := f.IsTautology(); got != tc.want {
			t.Errorf("case %d: IsTautology=%v want %v (%v)", i, got, tc.want, tc.cubes)
		}
	}
}

func TestComplement(t *testing.T) {
	f := MustParseCover(3, "11-", "0-1")
	g := f.Complement()
	tf, tg := truthTable(f), truthTable(g)
	for m := range tf {
		if tf[m] == tg[m] {
			t.Fatalf("complement wrong at minterm %d", m)
		}
	}
	// Complement of zero and one.
	if !Zero(2).Complement().IsTautology() {
		t.Fatal("complement of 0 must be 1")
	}
	if !One(2).Complement().IsZero() {
		t.Fatal("complement of 1 must be 0")
	}
}

func TestAndOrXor(t *testing.T) {
	f := MustParseCover(3, "1--")
	g := MustParseCover(3, "-1-")
	and := And(f, g)
	or := Or(f, g)
	xor := Xor(f, g)
	tf, tg := truthTable(f), truthTable(g)
	ta, to, tx := truthTable(and), truthTable(or), truthTable(xor)
	for m := range tf {
		if ta[m] != (tf[m] && tg[m]) {
			t.Fatalf("And wrong at %d", m)
		}
		if to[m] != (tf[m] || tg[m]) {
			t.Fatalf("Or wrong at %d", m)
		}
		if tx[m] != (tf[m] != tg[m]) {
			t.Fatalf("Xor wrong at %d", m)
		}
	}
}

func TestCofactor(t *testing.T) {
	f := MustParseCover(3, "11-", "0-1")
	hi := f.CofactorVar(0, true)
	lo := f.CofactorVar(0, false)
	// Shannon expansion must reconstruct f.
	x := NewCover(3)
	for _, c := range hi.Cubes {
		d := c.Clone()
		d.SetLit(0, LitPos)
		x.Add(d)
	}
	for _, c := range lo.Cubes {
		d := c.Clone()
		d.SetLit(0, LitNeg)
		x.Add(d)
	}
	sameFunction(t, f, x)
}

func TestCoversCube(t *testing.T) {
	f := MustParseCover(3, "1--", "01-")
	c, _ := ParseCube("11-")
	if !f.CoversCube(c) {
		t.Fatal("f must cover 11-")
	}
	c2, _ := ParseCube("00-")
	if f.CoversCube(c2) {
		t.Fatal("f must not cover 00-")
	}
}

func TestEquivalentTo(t *testing.T) {
	f := MustParseCover(2, "1-", "-1")
	g := MustParseCover(2, "01", "10", "11")
	if !f.EquivalentTo(g) {
		t.Fatal("OR forms must be equivalent")
	}
	h := MustParseCover(2, "1-")
	if f.EquivalentTo(h) {
		t.Fatal("distinct functions reported equivalent")
	}
}

func TestScc(t *testing.T) {
	f := MustParseCover(3, "1--", "11-", "1--")
	f.Scc()
	if len(f.Cubes) != 1 || f.Cubes[0].String() != "1--" {
		t.Fatalf("Scc result: %v", f)
	}
}

func TestSimplifyNoDC(t *testing.T) {
	// f = a'b + ab + ab' should minimize toward a + b.
	f := MustParseCover(2, "01", "11", "10")
	r := Minimize(f)
	sameFunction(t, f, r)
	if len(r.Cubes) > 2 {
		t.Fatalf("Minimize left %d cubes: %v", len(r.Cubes), r)
	}
}

func TestSimplifyWithDC(t *testing.T) {
	// The paper's equation (1)-(3): y = (v01·v31 + a)(b + v21) with
	// DCret containing v01 ⊕ v21 and v21 ⊕ v31 reduces to y = v01 + a... in
	// cube form over (v01, v31, v21, a, b):
	// f = v01 v31 b + v01 v31 v21 + a b + a v21
	f := MustParseCover(5, "11--1", "111--", "---11", "--11-")
	// DCret = v01⊕v21 + v31⊕v21 (equivalence class {v01,v31,v21}).
	dc := MustParseCover(5, "1-0--", "0-1--", "-10--", "-01--")
	r := Simplify(f, dc)
	if !Contain(f, dc, r) {
		t.Fatalf("Simplify violated containment:\n%v", r)
	}
	// Under the care set (all three register vars equal), f reduces to
	// v01·b + a  ... check specific care points.
	eval := func(v01, v31, v21, a, b bool) bool {
		return r.Eval([]bool{v01, v31, v21, a, b})
	}
	// care points: v01=v31=v21.
	for _, v := range []bool{false, true} {
		for _, a := range []bool{false, true} {
			for _, b := range []bool{false, true} {
				// Original: (v·v + a)(b + v) = (v + a)(b + v).
				want := (v || a) && (b || v)
				if eval(v, v, v, a, b) != want {
					t.Fatalf("care-point mismatch at v=%v a=%v b=%v", v, a, b)
				}
			}
		}
	}
	if r.NumLits() >= f.NumLits() {
		t.Fatalf("DC simplification did not reduce literals: %d -> %d\n%v", f.NumLits(), r.NumLits(), r)
	}
}

func TestSimplifyToTautology(t *testing.T) {
	f := MustParseCover(2, "1-")
	dc := MustParseCover(2, "0-")
	r := Simplify(f, dc)
	if !r.IsTautology() {
		t.Fatalf("f+dc covers everything; expected constant 1, got %v", r)
	}
}

func TestRemap(t *testing.T) {
	f := MustParseCover(2, "10")
	g := f.Remap(4, []int{3, 1})
	c, _ := ParseCube("-0-1")
	if len(g.Cubes) != 1 || !g.Cubes[0].Equal(c) {
		t.Fatalf("Remap result: %v", g)
	}
}

func TestSupportDependsOn(t *testing.T) {
	f := MustParseCover(3, "1--", "10-")
	sup := f.Support()
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 1 {
		t.Fatalf("Support = %v", sup)
	}
	if !f.DependsOn(0) {
		t.Fatal("must depend on var 0")
	}
	if f.DependsOn(1) {
		t.Fatal("var 1 is redundant (10- ⊆ 1--); no semantic dependence")
	}
	if f.DependsOn(2) {
		t.Fatal("must not depend on var 2")
	}
}
