package logic

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// PLA is a two-level function in the espresso input format: shared input
// plane, one output column per function, with ON-set rows ('1'), DC-set
// rows ('-'), and optionally OFF-set rows ('0').
type PLA struct {
	NumIn   int
	NumOut  int
	InName  []string
	OutName []string
	// On and DC hold one cover per output over the NumIn input variables.
	On []*Cover
	DC []*Cover
}

// ReadPLA parses an espresso .pla description (directives .i/.o/.ilb/.ob/
// .p/.type fr/.e; product-term rows).
func ReadPLA(r io.Reader) (*PLA, error) {
	sc := bufio.NewScanner(r)
	p := &PLA{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.Index(line, "#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".i":
			fmt.Sscanf(fields[1], "%d", &p.NumIn)
		case ".o":
			fmt.Sscanf(fields[1], "%d", &p.NumOut)
			p.On = make([]*Cover, p.NumOut)
			p.DC = make([]*Cover, p.NumOut)
			for o := range p.On {
				p.On[o] = NewCover(p.NumIn)
				p.DC[o] = NewCover(p.NumIn)
			}
		case ".ilb":
			p.InName = append([]string(nil), fields[1:]...)
		case ".ob":
			p.OutName = append([]string(nil), fields[1:]...)
		case ".p", ".type":
			// row count / type are advisory; fd (default) and fr accepted
		case ".e", ".end":
			// done
		default:
			if strings.HasPrefix(fields[0], ".") {
				continue // ignore unknown directives
			}
			if p.On == nil {
				return nil, fmt.Errorf("pla:%d: row before .i/.o", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("pla:%d: malformed row %q", lineNo, line)
			}
			in, out := fields[0], fields[1]
			if len(in) != p.NumIn || len(out) != p.NumOut {
				return nil, fmt.Errorf("pla:%d: row width mismatch", lineNo)
			}
			c, err := ParseCube(in)
			if err != nil {
				return nil, fmt.Errorf("pla:%d: %v", lineNo, err)
			}
			for o := 0; o < p.NumOut; o++ {
				switch out[o] {
				case '1', '4':
					p.On[o].Add(c.Clone())
				case '-', '2', '~':
					p.DC[o].Add(c.Clone())
				case '0':
					// OFF-set row: no-op for fd-type semantics
				default:
					return nil, fmt.Errorf("pla:%d: bad output char %q", lineNo, out[o])
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.On == nil {
		return nil, fmt.Errorf("pla: missing .i/.o header")
	}
	return p, nil
}

// WritePLA emits the PLA in espresso format (fd type: ON rows then DC rows).
func WritePLA(w io.Writer, p *PLA) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".i %d\n.o %d\n", p.NumIn, p.NumOut)
	if len(p.InName) == p.NumIn && p.NumIn > 0 {
		fmt.Fprintf(bw, ".ilb %s\n", strings.Join(p.InName, " "))
	}
	if len(p.OutName) == p.NumOut && p.NumOut > 0 {
		fmt.Fprintf(bw, ".ob %s\n", strings.Join(p.OutName, " "))
	}
	// Collect distinct cubes; emit one row per cube with its output plane.
	type rowInfo struct {
		cube Cube
		out  []byte
	}
	rows := map[string]*rowInfo{}
	var order []string
	mark := func(c Cube, o int, ch byte) {
		k := c.String()
		ri, ok := rows[k]
		if !ok {
			ri = &rowInfo{cube: c, out: []byte(strings.Repeat("0", p.NumOut))}
			rows[k] = ri
			order = append(order, k)
		}
		ri.out[o] = ch
	}
	for o := 0; o < p.NumOut; o++ {
		for _, c := range p.On[o].Cubes {
			mark(c, o, '1')
		}
		if p.DC[o] != nil {
			for _, c := range p.DC[o].Cubes {
				mark(c, o, '-')
			}
		}
	}
	fmt.Fprintf(bw, ".p %d\n", len(order))
	for _, k := range order {
		ri := rows[k]
		fmt.Fprintf(bw, "%s %s\n", ri.cube.String(), string(ri.out))
	}
	fmt.Fprintln(bw, ".e")
	return bw.Flush()
}

// MinimizePLA runs the espresso-style minimizer on every output against
// its don't-care set, returning a new PLA (the DC planes are preserved).
func MinimizePLA(p *PLA) *PLA {
	out := &PLA{
		NumIn: p.NumIn, NumOut: p.NumOut,
		InName: p.InName, OutName: p.OutName,
		On: make([]*Cover, p.NumOut),
		DC: make([]*Cover, p.NumOut),
	}
	for o := 0; o < p.NumOut; o++ {
		out.On[o] = Simplify(p.On[o], p.DC[o])
		out.DC[o] = p.DC[o].Clone()
	}
	return out
}
