package logic

import (
	"bytes"
	"strings"
	"testing"
)

const xorPLA = `
# 2-output PLA: xor and and
.i 2
.o 2
.ilb a b
.ob x y
.p 3
10 10
01 10
11 01
.e
`

func TestReadPLA(t *testing.T) {
	p, err := ReadPLA(strings.NewReader(xorPLA))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumIn != 2 || p.NumOut != 2 {
		t.Fatalf("header %d/%d", p.NumIn, p.NumOut)
	}
	if len(p.InName) != 2 || p.InName[0] != "a" || p.OutName[1] != "y" {
		t.Fatalf("labels: %v %v", p.InName, p.OutName)
	}
	// Output 0 is XOR, output 1 is AND.
	for m := 0; m < 4; m++ {
		a, b := m&1 != 0, m&2 != 0
		if p.On[0].Eval([]bool{a, b}) != (a != b) {
			t.Fatalf("xor wrong at %v %v", a, b)
		}
		if p.On[1].Eval([]bool{a, b}) != (a && b) {
			t.Fatalf("and wrong at %v %v", a, b)
		}
	}
}

func TestPLARoundTrip(t *testing.T) {
	p, err := ReadPLA(strings.NewReader(xorPLA))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePLA(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadPLA(&buf)
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, buf.String())
	}
	for o := 0; o < p.NumOut; o++ {
		if !p.On[o].EquivalentTo(q.On[o]) {
			t.Fatalf("output %d changed across round trip", o)
		}
	}
}

func TestPLADontCares(t *testing.T) {
	src := `
.i 3
.o 1
.p 4
111 1
110 1
00- -
011 1
.e
`
	p, err := ReadPLA(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.DC[0].Cubes) != 1 {
		t.Fatalf("DC rows: %d", len(p.DC[0].Cubes))
	}
	m := MinimizePLA(p)
	if !Contain(p.On[0], p.DC[0], m.On[0]) {
		t.Fatal("minimized PLA left the care interval")
	}
	if m.On[0].NumLits() > p.On[0].NumLits() {
		t.Fatalf("minimization increased literals: %d -> %d",
			p.On[0].NumLits(), m.On[0].NumLits())
	}
}

func TestPLAErrors(t *testing.T) {
	bad := []string{
		"10 1\n.e",              // row before header
		".i 2\n.o 1\n101 1\n.e", // width mismatch
		".i 2\n.o 1\n10 x\n.e",  // bad output char
		".i 2\n.o 1\n10\n.e",    // missing output plane
	}
	for i, src := range bad {
		if _, err := ReadPLA(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: error expected", i)
		}
	}
}

func TestPLAMissingHeader(t *testing.T) {
	if _, err := ReadPLA(strings.NewReader("# empty\n")); err == nil {
		t.Fatal("missing header must error")
	}
}
