package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randCover draws a random cover over n variables with up to maxCubes cubes.
func randCover(r *rand.Rand, n, maxCubes int) *Cover {
	f := NewCover(n)
	k := r.Intn(maxCubes + 1)
	for i := 0; i < k; i++ {
		c := NewCube(n)
		for v := 0; v < n; v++ {
			switch r.Intn(3) {
			case 0:
				c.SetLit(v, LitNeg)
			case 1:
				c.SetLit(v, LitPos)
			}
		}
		f.Add(c)
	}
	return f
}

const quickVars = 5

func TestQuickComplementIsInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		f := randCover(r, quickVars, 6)
		g := f.Complement().Complement()
		if !f.EquivalentTo(g) {
			t.Fatalf("double complement changed function:\n%v\nvs\n%v", f, g)
		}
	}
}

func TestQuickComplementDisjointAndComplete(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		f := randCover(r, quickVars, 6)
		g := f.Complement()
		if !And(f, g).IsZero() && And(f, g).IsTautology() {
			t.Fatal("f AND f' must not be a tautology")
		}
		tf, tg := truthTable(f), truthTable(g)
		for m := range tf {
			if tf[m] == tg[m] {
				t.Fatalf("complement overlap/gap at minterm %d", m)
			}
		}
	}
}

func TestQuickDeMorgan(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 150; i++ {
		f := randCover(r, quickVars, 4)
		g := randCover(r, quickVars, 4)
		lhs := Or(f, g).Complement()
		rhs := And(f.Complement(), g.Complement())
		if !lhs.EquivalentTo(rhs) {
			t.Fatal("De Morgan violated")
		}
	}
}

func TestQuickTautologyMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		f := randCover(r, quickVars, 7)
		tt := truthTable(f)
		brute := true
		for _, b := range tt {
			if !b {
				brute = false
				break
			}
		}
		if f.IsTautology() != brute {
			t.Fatalf("tautology mismatch for:\n%v", f)
		}
	}
}

func TestQuickSimplifyPreservesFunction(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		f := randCover(r, quickVars, 6)
		m := Minimize(f)
		if !f.EquivalentTo(m) {
			t.Fatalf("Minimize changed function:\n%v\n->\n%v", f, m)
		}
		if m.cost().less(f.cost()) == false && f.cost().less(m.cost()) {
			t.Fatal("Minimize made the cover strictly worse")
		}
	}
}

func TestQuickSimplifyWithDCStaysInInterval(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for i := 0; i < 200; i++ {
		f := randCover(r, quickVars, 5)
		dc := randCover(r, quickVars, 3)
		s := Simplify(f, dc)
		if !Contain(f, dc, s) {
			t.Fatalf("Simplify left [f, f+dc] interval:\nf=%v\ndc=%v\ns=%v", f, dc, s)
		}
		// On every care minterm the simplified function must agree with f.
		tf, tdc, ts := truthTable(f), truthTable(dc), truthTable(s)
		for mt := range tf {
			if !tdc[mt] && tf[mt] != ts[mt] {
				t.Fatalf("care minterm %d changed", mt)
			}
		}
	}
}

func TestQuickCofactorShannon(t *testing.T) {
	// Shannon expansion identity f = x·f_x + x'·f_x' via testing/quick over
	// random seeds.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randCover(r, quickVars, 6)
		v := r.Intn(quickVars)
		hi, lo := f.CofactorVar(v, true), f.CofactorVar(v, false)
		xpos := NewCover(quickVars)
		c := NewCube(quickVars)
		c.SetLit(v, LitPos)
		xpos.Add(c)
		xneg := NewCover(quickVars)
		c2 := NewCube(quickVars)
		c2.SetLit(v, LitNeg)
		xneg.Add(c2)
		recon := Or(And(xpos, hi), And(xneg, lo))
		return f.EquivalentTo(recon)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCoversAgreesWithTruthTables(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randCover(r, quickVars, 5)
		g := randCover(r, quickVars, 5)
		tf, tg := truthTable(f), truthTable(g)
		brute := true
		for m := range tg {
			if tg[m] && !tf[m] {
				brute = false
				break
			}
		}
		return f.Covers(g) == brute
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickXorProperties(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randCover(r, quickVars, 4)
		if !Xor(f, f).IsZeroFunction() {
			return false
		}
		if !Xor(f, Zero(quickVars)).EquivalentTo(f) {
			return false
		}
		return Xor(f, One(quickVars)).EquivalentTo(f.Complement())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// randUnateCover draws a random unate cover: each variable gets a fixed
// phase it may appear in.
func randUnateCover(r *rand.Rand, n, maxCubes int) *Cover {
	phase := make([]Lit, n)
	for v := range phase {
		if r.Intn(2) == 0 {
			phase[v] = LitPos
		} else {
			phase[v] = LitNeg
		}
	}
	f := NewCover(n)
	k := r.Intn(maxCubes + 1)
	for i := 0; i < k; i++ {
		c := NewCube(n)
		for v := 0; v < n; v++ {
			if r.Intn(2) == 0 {
				c.SetLit(v, phase[v])
			}
		}
		f.Add(c)
	}
	return f
}

func TestQuickIsUnateMatchesDefinition(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for i := 0; i < 300; i++ {
		var f *Cover
		if i%2 == 0 {
			f = randUnateCover(r, quickVars, 6)
		} else {
			f = randCover(r, quickVars, 6)
		}
		// Reference definition: a variable bound positively in one cube and
		// negatively in another makes the cover binate.
		binate := false
		for v := 0; v < f.N && !binate; v++ {
			pos, neg := false, false
			for _, c := range f.Cubes {
				switch c.Lit(v) {
				case LitPos:
					pos = true
				case LitNeg:
					neg = true
				}
			}
			binate = pos && neg
		}
		if f.IsUnate() == binate {
			t.Fatalf("IsUnate=%v but reference says binate=%v for\n%v", f.IsUnate(), binate, f)
		}
	}
}

// TestQuickSimplifyShortcutMatchesFullLoop pins the unate/single-cube
// early exit of Simplify against the ungated expand/irredundant loop: the
// shortcut must return a structurally identical cover (same cubes, same
// order), not merely an equivalent one — tablegen output depends on it.
func TestQuickSimplifyShortcutMatchesFullLoop(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 300; i++ {
		var f *Cover
		if i%2 == 0 {
			f = randUnateCover(r, quickVars, 6)
		} else {
			f = randCover(r, quickVars, 6)
		}
		got := simplify(f, nil, true)
		want := simplify(f, nil, false)
		if len(got.Cubes) != len(want.Cubes) {
			t.Fatalf("cube count differs: shortcut\n%v\nfull\n%v\ninput\n%v", got, want, f)
		}
		for j := range got.Cubes {
			if got.Cubes[j].String() != want.Cubes[j].String() {
				t.Fatalf("cube %d differs: shortcut\n%v\nfull\n%v\ninput\n%v", j, got, want, f)
			}
		}
	}
}
