package guard

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/network"
)

func TestClassifyStructural(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrClass
	}{
		{"nil", nil, ErrClassNone},
		{"budget sentinel", ErrBudget, ErrClassTransient},
		{"wrapped budget", BudgetErr("op", context.DeadlineExceeded), ErrClassTransient},
		{"deadline", context.DeadlineExceeded, ErrClassTransient},
		{"canceled", fmt.Errorf("outer: %w", context.Canceled), ErrClassTransient},
		{"pass panic", &PassError{Pass: "p", Recovered: "boom"}, ErrClassTransient},
		{"rollback of panic", &RollbackError{Pass: "p", Cause: &PassError{Pass: "p"}}, ErrClassTransient},
		{"rollback of budget", &RollbackError{Pass: "p", Cause: BudgetErr("p", nil)}, ErrClassTransient},
		{"rollback of check violation", &RollbackError{Pass: "p", Cause: errors.New("invariant violation")}, ErrClassPermanent},
		{"parse error", errors.New("blif: parse error"), ErrClassPermanent},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestClassifyExplicitOverride(t *testing.T) {
	// An explicit annotation beats the structural inference in both
	// directions, and survives further wrapping.
	perm := WithClass(BudgetErr("op", nil), ErrClassPermanent)
	if got := Classify(perm); got != ErrClassPermanent {
		t.Fatalf("override to permanent: got %v", got)
	}
	trans := fmt.Errorf("outer: %w", WithClass(errors.New("flaky io"), ErrClassTransient))
	if got := Classify(trans); got != ErrClassTransient {
		t.Fatalf("override to transient: got %v", got)
	}
	if WithClass(nil, ErrClassPermanent) != nil {
		t.Fatal("WithClass(nil) must stay nil")
	}
	// The wrapper is transparent to errors.Is on the underlying chain.
	if !errors.Is(perm, ErrBudget) {
		t.Fatal("WithClass must not hide the wrapped chain")
	}
}

func TestClassifyContainedPanicFromRun(t *testing.T) {
	err := Run(context.Background(), "pass", &network.Network{}, func(context.Context) error {
		panic("injected")
	})
	if err == nil {
		t.Fatal("expected contained panic error")
	}
	if got := Classify(err); got != ErrClassTransient {
		t.Fatalf("contained panic classifies %v, want transient", got)
	}
}
