package guard

import (
	"context"
	"errors"
	"fmt"
)

// ErrClass partitions failures by whether retrying the same work can
// possibly succeed. The serving layer (internal/serve) retries transient
// failures with capped backoff and refuses to answer them from the result
// cache; permanent failures are cached and reported immediately, because
// re-running deterministic work on the same input reproduces them.
type ErrClass int

const (
	// ErrClassNone classifies a nil error.
	ErrClassNone ErrClass = iota
	// ErrClassTransient marks failures tied to the execution environment
	// rather than the input: exhausted wall-clock budgets, cancelled
	// contexts, shed load, and panics contained at a pass boundary (a
	// contained panic is treated as potentially load-dependent; the retry
	// budget bounds the cost of a deterministic one).
	ErrClassTransient
	// ErrClassPermanent marks failures determined by the input alone:
	// parse and validation errors, structural invariant violations, and
	// verification mismatches. Retrying reproduces them.
	ErrClassPermanent
)

func (c ErrClass) String() string {
	switch c {
	case ErrClassNone:
		return "none"
	case ErrClassTransient:
		return "transient"
	case ErrClassPermanent:
		return "permanent"
	}
	return fmt.Sprintf("errclass(%d)", int(c))
}

// classifiedError pins an explicit class onto an error chain, overriding
// Classify's structural inference.
type classifiedError struct {
	class ErrClass
	err   error
}

func (e *classifiedError) Error() string { return e.err.Error() }
func (e *classifiedError) Unwrap() error { return e.err }

// WithClass wraps err with an explicit class, overriding the structural
// classification of Classify. A nil err returns nil.
func WithClass(err error, class ErrClass) error {
	if err == nil {
		return nil
	}
	return &classifiedError{class: class, err: err}
}

// Classify maps an error to its retry class. An explicit WithClass
// annotation anywhere in the chain wins; otherwise budget exhaustion,
// context cancellation and contained panics are transient, and everything
// else — parse errors, invariant violations, verification mismatches — is
// permanent. Rollback errors classify by their cause (their Unwrap chain
// exposes it).
func Classify(err error) ErrClass {
	if err == nil {
		return ErrClassNone
	}
	var ce *classifiedError
	if errors.As(err, &ce) {
		return ce.class
	}
	if errors.Is(err, ErrBudget) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) {
		return ErrClassTransient
	}
	var pe *PassError
	if errors.As(err, &pe) {
		return ErrClassTransient
	}
	return ErrClassPermanent
}
