package guard

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/logic"
	"repro/internal/network"
	"repro/internal/obs"
)

// bufNet is a one-buffer circuit: y = a.
func bufNet(t *testing.T) *network.Network {
	t.Helper()
	n := network.New("g")
	a := n.AddPI("a")
	b := n.AddLogic("b", []*network.Node{a}, logic.MustParseCover(1, "1"))
	n.AddPO("y", b)
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestCheckLiveAndCancelled(t *testing.T) {
	if err := Check(context.Background(), "op"); err != nil {
		t.Fatalf("live context must pass: %v", err)
	}
	if err := Check(nil, "op"); err != nil {
		t.Fatalf("nil context must pass: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Check(ctx, "op")
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("cancelled context must match ErrBudget: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("budget error must wrap the context cause: %v", err)
	}
	if !strings.Contains(err.Error(), "op") {
		t.Fatalf("budget error must name the operation: %v", err)
	}
}

func TestBudgetContexts(t *testing.T) {
	// Zero budgets are unbounded: the context passes straight through.
	ctx := context.Background()
	fc, cancel := Budget{}.FlowContext(ctx)
	cancel()
	if fc != ctx {
		t.Fatal("zero flow budget must not derive a new context")
	}
	// A tiny pass deadline expires and carries a descriptive cause.
	pc, cancel := Budget{Pass: time.Nanosecond}.PassContext(ctx)
	defer cancel()
	time.Sleep(2 * time.Millisecond)
	err := Check(pc, "slow-pass")
	if !errors.Is(err, ErrBudget) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired pass budget must match ErrBudget and DeadlineExceeded: %v", err)
	}
	if !strings.Contains(err.Error(), "pass deadline") {
		t.Fatalf("cause must say which level expired: %v", err)
	}
	// Job sits above Flow: a zero Job budget passes through, a tiny one
	// expires with a job-level cause.
	jc, cancel := Budget{}.JobContext(ctx)
	cancel()
	if jc != ctx {
		t.Fatal("zero job budget must not derive a new context")
	}
	jc, cancel = Budget{Job: time.Nanosecond}.JobContext(ctx)
	defer cancel()
	time.Sleep(2 * time.Millisecond)
	err = Check(jc, "whole-job")
	if !errors.Is(err, ErrBudget) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired job budget must match ErrBudget and DeadlineExceeded: %v", err)
	}
	if !strings.Contains(err.Error(), "job deadline") {
		t.Fatalf("cause must say the job level expired: %v", err)
	}
}

func TestRunContainsPanic(t *testing.T) {
	n := bufNet(t)
	err := Run(context.Background(), "explode", n, func(context.Context) error {
		panic("boom")
	})
	var pe *PassError
	if !errors.As(err, &pe) {
		t.Fatalf("panic must become *PassError, got %v", err)
	}
	if pe.Pass != "explode" || pe.Recovered != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("PassError incomplete: %+v", pe)
	}
	if pe.Stats.PIs == 0 || pe.Stats.LogicNodes == 0 {
		t.Fatalf("PassError must snapshot circuit stats: %+v", pe.Stats)
	}
}

func TestRunUnwrapsRecoveredError(t *testing.T) {
	sentinel := errors.New("inner failure")
	err := Run(context.Background(), "p", nil, func(context.Context) error {
		panic(sentinel)
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("a panicked error value must stay matchable: %v", err)
	}
}

func TestTxCommit(t *testing.T) {
	n := bufNet(t)
	tr := obs.New()
	out, rep := Tx(context.Background(), "noop", n, TxOptions{Tracer: tr},
		func(_ context.Context, work *network.Network) (*network.Network, int, error) {
			return work, 0, nil
		})
	if !rep.Committed || rep.Err != nil || rep.Note != "" {
		t.Fatalf("clean pass must commit: %+v", rep)
	}
	if out == n {
		t.Fatal("committed output must be the working clone, not the input")
	}
	if tr.Counters()["pass_committed"] != 1 || tr.Counters()["pass_rolled_back"] != 0 {
		t.Fatalf("commit counters wrong: %v", tr.Counters())
	}
}

func TestTxRollbackOnPassError(t *testing.T) {
	n := bufNet(t)
	tr := obs.New()
	fail := errors.New("pass says no")
	out, rep := Tx(context.Background(), "bad", n, TxOptions{Tracer: tr},
		func(context.Context, *network.Network) (*network.Network, int, error) {
			return nil, 0, fail
		})
	if rep.Committed || out != n {
		t.Fatalf("failed pass must roll back to the input: %+v", rep)
	}
	var rb *RollbackError
	if !errors.As(rep.Err, &rb) || rb.Pass != "bad" || !errors.Is(rep.Err, fail) {
		t.Fatalf("rollback must wrap the cause: %v", rep.Err)
	}
	if rep.Note == "" {
		t.Fatal("rollback must produce a footnote")
	}
	if tr.Counters()["pass_failed"] != 1 || tr.Counters()["pass_rolled_back"] != 1 {
		t.Fatalf("rollback counters wrong: %v", tr.Counters())
	}
}

func TestTxContainsInjectedPanic(t *testing.T) {
	n := bufNet(t)
	tr := obs.New()
	out, rep := Tx(context.Background(), "p", n,
		TxOptions{Tracer: tr, Inject: FixedInjector(FaultPanic)},
		func(_ context.Context, work *network.Network) (*network.Network, int, error) {
			return work, 0, nil
		})
	if rep.Committed || out != n {
		t.Fatal("injected panic must roll back")
	}
	var pe *PassError
	if !errors.As(rep.Err, &pe) || pe.Pass != "p" {
		t.Fatalf("rollback must wrap the contained panic: %v", rep.Err)
	}
	if tr.Counters()["pass_panic_contained"] != 1 {
		t.Fatalf("panic counter missing: %v", tr.Counters())
	}
}

func TestTxRollsBackCorruptOutput(t *testing.T) {
	n := bufNet(t)
	tr := obs.New()
	out, rep := Tx(context.Background(), "c", n,
		TxOptions{Tracer: tr, Inject: FixedInjector(FaultCorrupt)},
		func(_ context.Context, work *network.Network) (*network.Network, int, error) {
			return work, 0, nil
		})
	if rep.Committed {
		t.Fatal("corrupted output must not commit")
	}
	if out != n || out.Check() != nil {
		t.Fatal("rollback must hand back the untouched, valid input")
	}
	if tr.Counters()["guard_check_failed"] != 1 {
		t.Fatalf("check-failure counter missing: %v", tr.Counters())
	}
	if !strings.Contains(rep.Note, "invariant violation") {
		t.Fatalf("note must name the violation: %q", rep.Note)
	}
}

func TestTxRollsBackOnInjectedDeadline(t *testing.T) {
	n := bufNet(t)
	tr := obs.New()
	ran := false
	out, rep := Tx(context.Background(), "d", n,
		TxOptions{Tracer: tr, Inject: FixedInjector(FaultDeadline)},
		func(_ context.Context, work *network.Network) (*network.Network, int, error) {
			ran = true
			return work, 0, nil
		})
	if ran {
		t.Fatal("an exhausted budget must stop the pass before it runs")
	}
	if rep.Committed || out != n || !errors.Is(rep.Err, ErrBudget) {
		t.Fatalf("injected deadline must be a typed budget rollback: %+v", rep)
	}
	if tr.Counters()["pass_budget_exhausted"] != 1 {
		t.Fatalf("budget counter missing: %v", tr.Counters())
	}
}

func TestTxSmokeCheckCatchesMiscompare(t *testing.T) {
	n := bufNet(t)
	tr := obs.New()
	// The "optimization" silently inverts the output: structurally valid,
	// functionally wrong — exactly what the smoke simulation must catch.
	out, rep := Tx(context.Background(), "evil", n, TxOptions{Tracer: tr},
		func(_ context.Context, work *network.Network) (*network.Network, int, error) {
			b := work.FindNode("b")
			work.SetFunction(b, b.Fanins, logic.MustParseCover(1, "0"))
			return work, 0, nil
		})
	if rep.Committed || out != n {
		t.Fatalf("miscompare must roll back: %+v", rep)
	}
	if tr.Counters()["guard_smoke_failed"] != 1 {
		t.Fatalf("smoke counter missing: %v", tr.Counters())
	}
	if !strings.Contains(rep.Note, "smoke check failed") {
		t.Fatalf("note must name the smoke failure: %q", rep.Note)
	}
}

func TestTxSmokeCheckDisabled(t *testing.T) {
	n := bufNet(t)
	// With the smoke check disabled the inverted output commits (Check
	// alone cannot see functional changes) — the knob exists for passes
	// whose equivalence is checked elsewhere.
	out, rep := Tx(context.Background(), "evil", n, TxOptions{SmokeCycles: -1},
		func(_ context.Context, work *network.Network) (*network.Network, int, error) {
			b := work.FindNode("b")
			work.SetFunction(b, b.Fanins, logic.MustParseCover(1, "0"))
			return work, 0, nil
		})
	if !rep.Committed || out == n {
		t.Fatalf("disabled smoke check must commit: %+v", rep)
	}
}

func TestTxRollbackEventEmitted(t *testing.T) {
	n := bufNet(t)
	var sb strings.Builder
	tr := obs.NewJSON(&sb)
	Tx(context.Background(), "bad", n, TxOptions{Tracer: tr},
		func(context.Context, *network.Network) (*network.Network, int, error) {
			return nil, 0, errors.New("nope")
		})
	if !strings.Contains(sb.String(), "guard_rollback") {
		t.Fatalf("rollback must emit a guard_rollback event, got %s", sb.String())
	}
}

func TestTxNilNetworkFromPass(t *testing.T) {
	n := bufNet(t)
	out, rep := Tx(context.Background(), "nil", n, TxOptions{},
		func(context.Context, *network.Network) (*network.Network, int, error) {
			return nil, 0, nil
		})
	if rep.Committed || out != n {
		t.Fatalf("nil output must roll back: %+v", rep)
	}
}
