package guard

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bitsim"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TxOptions configures the transactional pass runner.
type TxOptions struct {
	// Tracer receives a "guard.<pass>" span with commit/rollback counters
	// and a "guard_rollback" event on every rollback (nil: no tracing).
	Tracer *obs.Tracer
	// Budget supplies the per-pass deadline (Budget.Pass; the flow-level
	// deadline is expected to already be on the incoming context).
	Budget Budget
	// Inject optionally injects faults per pass invocation (nil: none).
	Inject Injector
	// SmokeCycles is the length of the post-pass random-simulation smoke
	// check against the pass input (default sim.DefaultSpotCheck.Smoke.Cycles;
	// negative disables).
	SmokeCycles int
	// SmokeSeed seeds the smoke check's input vectors (default
	// sim.DefaultSpotCheck.Smoke.Seed).
	SmokeSeed int64
}

// TxReport describes the outcome of one transactional pass.
type TxReport struct {
	// Pass is the guarded pass name.
	Pass string
	// Committed is true when the pass output was validated and adopted.
	Committed bool
	// Note is a human-readable fallback note suitable for Metrics.Note
	// (mirroring the paper's Table I footnotes); empty on commit.
	Note string
	// Err is the typed failure that forced the rollback: always a
	// *RollbackError wrapping the cause (nil on commit).
	Err error
}

// PassFunc transforms a private working copy of the input network. It may
// mutate work in place and return it, or return a freshly built network.
// The returned int is the delayed-replacement prefix the transformation
// introduced (0 for behaviour-preserving passes), used by the smoke check.
type PassFunc func(ctx context.Context, work *network.Network) (*network.Network, int, error)

// Tx executes one pass transactionally: it snapshots the input (the pass
// only ever sees a clone), runs fn under the per-pass budget with panic
// containment, validates the output with network.Check plus a short
// random-simulation smoke check against the input, and either commits the
// new network or rolls back to the untouched input with a Table-I-style
// fallback note. Tx never panics and never returns an invalid network: on
// any failure the returned network is `in` itself.
func Tx(ctx context.Context, pass string, in *network.Network, opt TxOptions, fn PassFunc) (*network.Network, TxReport) {
	tr := opt.Tracer
	sp := tr.Begin("guard." + pass)
	defer sp.End()

	rollback := func(counter, reason string, cause error) (*network.Network, TxReport) {
		sp.Add(counter, 1)
		sp.Add("pass_rolled_back", 1)
		tr.Event("guard_rollback", map[string]any{
			"pass": pass, "kind": counter, "reason": reason,
		})
		return in, TxReport{
			Pass: pass,
			Note: pass + ": " + reason,
			Err:  &RollbackError{Pass: pass, Cause: cause},
		}
	}

	fault := FaultNone
	if opt.Inject != nil {
		fault = opt.Inject.Fault(pass)
	}
	pctx, cancel := opt.Budget.PassContext(ctx)
	defer cancel()
	if fault == FaultDeadline {
		// Hand the pass an already-exhausted context: the pre-check below
		// (and any in-pass cancellation point) sees the injected cause.
		dctx, dcancel := context.WithCancelCause(pctx)
		dcancel(fmt.Errorf("guard: injected deadline exhaustion in %s", pass))
		defer dcancel(nil)
		pctx = dctx
	}
	if err := Check(pctx, pass); err != nil {
		sp.Add("pass_deadline_exceeded", 1)
		return rollback("pass_budget_exhausted", "budget exhausted", err)
	}

	var out *network.Network
	var prefix int
	err := Run(pctx, pass, in, func(ctx context.Context) error {
		work := in.Clone()
		if fault == FaultPanic {
			panic(fmt.Sprintf("guard: injected panic in %s", pass))
		}
		o, k, ferr := fn(ctx, work)
		if ferr != nil {
			return ferr
		}
		if o == nil {
			return fmt.Errorf("guard: pass %s returned a nil network", pass)
		}
		out, prefix = o, k
		return nil
	})
	if err != nil {
		var pe *PassError
		switch {
		case errors.As(err, &pe):
			return rollback("pass_panic_contained", fmt.Sprintf("panic contained (%v)", pe.Recovered), err)
		case errors.Is(err, ErrBudget):
			return rollback("pass_budget_exhausted", "budget exhausted", err)
		default:
			return rollback("pass_failed", err.Error(), err)
		}
	}

	if fault == FaultCorrupt {
		corruptNetwork(out)
	}
	if cerr := out.Check(); cerr != nil {
		return rollback("guard_check_failed", "invariant violation: "+cerr.Error(), cerr)
	}
	if serr := smokeCheck(in, out, prefix, opt, sp); serr != nil {
		return rollback("guard_smoke_failed", "smoke check failed: "+serr.Error(), serr)
	}
	sp.Add("pass_committed", 1)
	return out, TxReport{Pass: pass, Committed: true}
}

// smokeCheck drives input and output with the same short random input
// sequence and compares POs after the pass's delayed-replacement prefix. A
// panic inside the simulator (e.g. an X initial state escaping two-valued
// simulation on both machines) makes the check inconclusive, not a
// violation — structural validity was already established by Check.
func smokeCheck(in, out *network.Network, prefix int, opt TxOptions, sp *obs.Span) (err error) {
	cycles := opt.SmokeCycles
	if cycles == 0 {
		cycles = sim.DefaultSpotCheck.Smoke.Cycles
	}
	if cycles < 0 {
		return nil
	}
	seed := opt.SmokeSeed
	if seed == 0 {
		seed = sim.DefaultSpotCheck.Smoke.Seed
	}
	defer func() {
		if r := recover(); r != nil {
			sp.Add("guard_smoke_inconclusive", 1)
			err = nil
		}
	}()
	return bitsim.RandomEquivalent(in, out, prefix, cycles, seed, bitsim.Options{Tracer: opt.Tracer})
}

// corruptNetwork realizes FaultCorrupt: it breaks a structural invariant of
// the pass output (function arity vs fanin count, fanin/fanout symmetry) in
// a deterministic way, so the transactional validation must catch it.
func corruptNetwork(n *network.Network) {
	for _, v := range n.Nodes() {
		if v.Kind == network.KindLogic && len(v.Fanins) > 0 {
			v.Fanins = v.Fanins[:len(v.Fanins)-1]
			return
		}
	}
}
