// Package guard is the resilience layer around pass execution: wall-clock
// budgets threaded as context deadlines, panic containment at pass
// boundaries, and transactional pass execution with rollback to the last
// known-good network (tx.go).
//
// The paper's flows chain fragile passes — implicit state enumeration can
// blow up, retiming can fail to realize initial states, and the structural
// layers panic on invariant violations. VirtualSync+ motivates bounding
// optimization effort under a timing budget, and the network-flow retiming
// literature degrades to weaker formulations when the full problem is
// infeasible; this package gives every pass in the pipeline the same
// discipline. All guard events are reported through internal/obs so that
// degradations are visible in -trace and -stats-json output.
//
// Error taxonomy:
//
//   - ErrBudget      — a wall-clock or cancellation budget was exhausted.
//     Matched with errors.Is; the concrete error wraps the context cause.
//   - *PassError     — a pass panicked; carries the pass name, the circuit
//     stats at entry, the recovered value and the stack.
//   - *RollbackError — a transactional pass was rolled back; wraps the
//     containing failure (a *PassError, a budget error, a network.Check
//     violation, or a smoke-simulation mismatch).
package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/network"
)

// ErrBudget is the sentinel for exhausted execution budgets (per-pass or
// per-flow deadlines, cancelled contexts, injected deadline faults). Match
// with errors.Is; returned errors wrap both this sentinel and the cause.
var ErrBudget = errors.New("guard: budget exhausted")

// budgetError wraps ErrBudget together with the concrete cause, so both
// errors.Is(err, guard.ErrBudget) and errors.Is(err, context.DeadlineExceeded)
// hold.
type budgetError struct {
	op    string
	cause error
}

func (e *budgetError) Error() string {
	return fmt.Sprintf("guard: %s: budget exhausted: %v", e.op, e.cause)
}

func (e *budgetError) Unwrap() []error { return []error{ErrBudget, e.cause} }

// BudgetErr builds a typed budget error for operation op wrapping cause.
func BudgetErr(op string, cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return &budgetError{op: op, cause: cause}
}

// Check returns nil while ctx is live, and a typed budget error (wrapping
// ErrBudget and the context cause) once it is cancelled or past its
// deadline. Long-running kernels — BDD fixpoint iterations, retiming binary
// search, the mapper DP — call it at their loop heads.
func Check(ctx context.Context, op string) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return BudgetErr(op, context.Cause(ctx))
	default:
		return nil
	}
}

// PassError reports a panic contained at a pass boundary.
type PassError struct {
	// Pass names the guarded pass ("mapper.map_delay", …).
	Pass string
	// Stats snapshots the input circuit at pass entry.
	Stats network.Stats
	// Recovered is the value recovered from the panic.
	Recovered any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PassError) Error() string {
	return fmt.Sprintf("guard: pass %s panicked on circuit [%v]: %v", e.Pass, e.Stats, e.Recovered)
}

// Unwrap exposes a recovered error value to errors.Is/As chains.
func (e *PassError) Unwrap() error {
	if err, ok := e.Recovered.(error); ok {
		return err
	}
	return nil
}

// RollbackError reports that a transactional pass was rolled back to its
// input network. It wraps the containing failure.
type RollbackError struct {
	Pass  string
	Cause error
}

func (e *RollbackError) Error() string {
	return fmt.Sprintf("guard: pass %s rolled back: %v", e.Pass, e.Cause)
}

func (e *RollbackError) Unwrap() error { return e.Cause }

// Budget bounds job, flow, and pass execution in wall-clock time. Zero
// fields mean "unbounded".
type Budget struct {
	// Job bounds one whole unit of submitted work — for the serving layer
	// (internal/serve) a job chains flows plus verification, so Job sits
	// above Flow the way Flow sits above Pass.
	Job time.Duration
	// Flow bounds one whole flow (script.delay, retime+comb.opt, …).
	Flow time.Duration
	// Pass bounds each individual pass inside a flow.
	Pass time.Duration
}

// JobContext derives the job-level deadline context. The cancel func must
// always be called.
func (b Budget) JobContext(ctx context.Context) (context.Context, context.CancelFunc) {
	return withBudget(ctx, "job", b.Job)
}

// FlowContext derives the flow-level deadline context. The cancel func must
// always be called.
func (b Budget) FlowContext(ctx context.Context) (context.Context, context.CancelFunc) {
	return withBudget(ctx, "flow", b.Flow)
}

// PassContext derives the pass-level deadline context. The cancel func must
// always be called.
func (b Budget) PassContext(ctx context.Context) (context.Context, context.CancelFunc) {
	return withBudget(ctx, "pass", b.Pass)
}

func withBudget(ctx context.Context, level string, d time.Duration) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeoutCause(ctx, d,
		fmt.Errorf("guard: %s deadline (%v) exceeded: %w", level, d, context.DeadlineExceeded))
}

// Fault enumerates the injectable failure modes understood by the guard
// layer (the deterministic harness in internal/faults selects among them).
type Fault int

const (
	// FaultNone leaves the pass untouched.
	FaultNone Fault = iota
	// FaultPanic makes the pass panic mid-flight.
	FaultPanic
	// FaultCorrupt corrupts the pass output before validation, so the
	// transactional runner's network.Check must catch it and roll back.
	FaultCorrupt
	// FaultDeadline hands the pass an already-exhausted context.
	FaultDeadline
	// FaultBDDBlowup shrinks the BDD node budget of implicit state
	// enumeration to a few nodes; applied by the call sites that configure
	// reach.Limits (the guard runner itself ignores it).
	FaultBDDBlowup
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultPanic:
		return "panic"
	case FaultCorrupt:
		return "corrupt"
	case FaultDeadline:
		return "deadline"
	case FaultBDDBlowup:
		return "bdd_blowup"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Injector decides, per guarded pass invocation, whether to inject a fault.
// Implementations must be safe for use from a single flow goroutine and
// deterministic for reproducible failure scenarios (see internal/faults).
type Injector interface {
	Fault(pass string) Fault
}

// FixedInjector returns an Injector that reports f for every pass. Call
// sites that must consult a stateful injector exactly once per pass
// invocation (some faults are realized outside the transactional runner)
// resolve the decision first and hand the fixed result to Tx.
func FixedInjector(f Fault) Injector { return fixedInjector(f) }

type fixedInjector Fault

func (f fixedInjector) Fault(string) Fault { return Fault(f) }

// Run executes fn under ctx with panic containment: a budget exhausted
// before fn starts returns a typed budget error, and a panic inside fn is
// converted into a *PassError carrying the pass name, the circuit stats of
// n at entry, the recovered value, and the stack — instead of killing the
// process.
func Run(ctx context.Context, pass string, n *network.Network, fn func(ctx context.Context) error) (err error) {
	if cerr := Check(ctx, pass); cerr != nil {
		return cerr
	}
	var stats network.Stats
	if n != nil {
		stats = n.Stat()
	}
	defer func() {
		if r := recover(); r != nil {
			err = &PassError{Pass: pass, Stats: stats, Recovered: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx)
}
