// Package repro hosts the benchmark harness that regenerates the paper's
// evaluation: one benchmark per Table I circuit and flow (reporting the
// Reg/Clk/Area row values as custom metrics), the Section III worked
// example, the Section IV engine-complexity claim, and the ablations
// called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers differ from the paper's SIS/lib2 testbed; the shapes
// (who wins, where the technique declines) are the reproduction target.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/flows"
	"repro/internal/genlib"
	"repro/internal/logic"
	"repro/internal/network"
	"repro/internal/reach"
	"repro/internal/retime"
	"repro/internal/timing"
)

// tableCircuits are the Table I rows exercised by the flow benchmarks.
// The largest profiles run but dominate wall-clock; trim with -bench
// filters when iterating.
var tableCircuits = []string{
	"ex2", "ex6", "bbtas", "bbara", "s27", "s208", "s298", "s344",
	"s382", "s386", "s400", "s420", "s510", "s526", "s641", "s820",
}

func buildCircuit(b *testing.B, name string) *network.Network {
	b.Helper()
	c, ok := bench.ByName(name)
	if !ok {
		b.Fatalf("unknown circuit %s", name)
	}
	n, err := c.Build()
	if err != nil {
		b.Fatal(err)
	}
	return n
}

// BenchmarkTableIScriptDelay regenerates the "script.delay" column.
func BenchmarkTableIScriptDelay(b *testing.B) {
	lib := genlib.Lib2()
	for _, name := range tableCircuits {
		b.Run(name, func(b *testing.B) {
			src := buildCircuit(b, name)
			var last *flows.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := flows.ScriptDelay(src, lib)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			report(b, last)
		})
	}
}

// BenchmarkTableIRetiming regenerates the "+ retiming + comb.opt" column.
func BenchmarkTableIRetiming(b *testing.B) {
	lib := genlib.Lib2()
	for _, name := range tableCircuits {
		b.Run(name, func(b *testing.B) {
			src := buildCircuit(b, name)
			sd, err := flows.ScriptDelay(src, lib)
			if err != nil {
				b.Fatal(err)
			}
			var last *flows.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := flows.RetimeCombOpt(sd.Net, lib)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			report(b, last)
		})
	}
}

// BenchmarkTableIResynthesis regenerates the "+ resynthesis" column.
func BenchmarkTableIResynthesis(b *testing.B) {
	lib := genlib.Lib2()
	for _, name := range tableCircuits {
		b.Run(name, func(b *testing.B) {
			src := buildCircuit(b, name)
			sd, err := flows.ScriptDelay(src, lib)
			if err != nil {
				b.Fatal(err)
			}
			var last *flows.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := flows.Resynthesis(sd.Net, lib)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			report(b, last)
		})
	}
}

func report(b *testing.B, r *flows.Result) {
	b.ReportMetric(float64(r.Regs), "regs")
	b.ReportMetric(r.Clk, "clk")
	b.ReportMetric(r.Area, "area")
}

// BenchmarkPaperExample is the Section III worked example (Fig. 4–6):
// resynthesis takes the unit-delay cycle time from 3 to the optimum 1.
func BenchmarkPaperExample(b *testing.B) {
	src := bench.BuildPaperExample()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.Resynthesize(src, core.Options{})
		if err != nil || !res.Applied {
			b.Fatalf("%v %v", err, res)
		}
	}
	b.ReportMetric(res.PeriodBefore, "period-before")
	b.ReportMetric(res.PeriodAfter, "period-after")
	b.ReportMetric(float64(res.RegsAfter), "regs")
}

// BenchmarkRetimingEngine supports the Section IV complexity discussion:
// the forward-retiming engine over fanout-free critical paths of growing
// length (quadratic worst case in the path length).
func BenchmarkRetimingEngine(b *testing.B) {
	for _, length := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("path%d", length), func(b *testing.B) {
			src := buildChainFSM(length)
			for i := 0; i < b.N; i++ {
				if _, err := core.Resynthesize(src, core.Options{KeepHarm: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// buildChainFSM builds a ring of `length` gates fed by a multi-fanout
// register, so the whole path is register-fed and forward-retimable.
func buildChainFSM(length int) *network.Network {
	n := network.New(fmt.Sprintf("chain%d", length))
	a := n.AddPI("a")
	v := n.AddLatch("v", nil, network.V0)
	s := n.AddLatch("s", a, network.V0)
	xor2 := logic.MustParseCover(2, "10", "01")
	buf := logic.MustParseCover(1, "1")
	cur := n.AddLogic("h0", []*network.Node{v.Output, s.Output}, xor2.Clone())
	for i := 1; i < length; i++ {
		cur = n.AddLogic(fmt.Sprintf("h%d", i), []*network.Node{cur}, buf.Clone())
	}
	tail := n.AddLogic("tail", []*network.Node{cur, v.Output}, logic.MustParseCover(2, "11"))
	v.Driver = tail
	n.AddPO("y", tail)
	return n
}

// BenchmarkAblationDCRet quantifies the paper's observation that "without
// the don't care set, no simplification could have been achieved at all":
// same algorithm, don't-care usage disabled.
func BenchmarkAblationDCRet(b *testing.B) {
	src := bench.BuildPaperExample()
	for _, ab := range []struct {
		name string
		opt  core.Options
	}{
		{"with-dcret", core.Options{KeepHarm: true}},
		{"no-dcret", core.Options{DisableDCRet: true, KeepHarm: true}},
	} {
		b.Run(ab.name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = core.Resynthesize(src, ab.opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.PeriodAfter, "period")
			b.ReportMetric(float64(res.Simplified), "simplified")
		})
	}
}

// BenchmarkAblationMinArea quantifies the register recovery of the
// constrained min-area post-pass.
func BenchmarkAblationMinArea(b *testing.B) {
	src := bench.BuildPaperExample()
	for _, ab := range []struct {
		name string
		opt  core.Options
	}{
		{"with-minarea", core.Options{}},
		{"no-minarea", core.Options{SkipMinArea: true}},
	} {
		b.Run(ab.name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = core.Resynthesize(src, ab.opt)
				if err != nil || !res.Applied {
					b.Fatalf("%v", err)
				}
			}
			b.ReportMetric(float64(res.RegsAfter), "regs")
		})
	}
}

// BenchmarkMinPeriodRetiming measures the Leiserson–Saxe substrate on the
// synthetic ISCAS profiles (binary search + FEAS + realization).
func BenchmarkMinPeriodRetiming(b *testing.B) {
	for _, name := range []string{"s208", "s344", "s641"} {
		b.Run(name, func(b *testing.B) {
			src := buildCircuit(b, name)
			for i := 0; i < b.N; i++ {
				if _, _, err := retime.MinPeriod(src, nil); err != nil {
					b.Skipf("retiming failed (a legitimate Table I outcome): %v", err)
				}
			}
		})
	}
}

// BenchmarkImplicitEnumeration measures the BDD reachability engine the
// baseline flow depends on — the cost the paper's technique avoids.
func BenchmarkImplicitEnumeration(b *testing.B) {
	for _, name := range []string{"bbtas", "bbara", "s298"} {
		b.Run(name, func(b *testing.B) {
			src := buildCircuit(b, name)
			for i := 0; i < b.N; i++ {
				if _, err := reach.Analyze(src, reach.DefaultLimits); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEspressoSimplify measures the two-level minimizer with DCret-
// style don't cares — the inner loop of the resynthesis step.
func BenchmarkEspressoSimplify(b *testing.B) {
	f := logic.MustParseCover(5, "11--1", "111--", "---11", "--11-")
	dc := logic.MustParseCover(5, "1-0--", "0-1--", "-10--", "-01--")
	for i := 0; i < b.N; i++ {
		logic.Simplify(f, dc)
	}
}

// BenchmarkSTA measures the static timing analyzer over a mapped circuit.
func BenchmarkSTA(b *testing.B) {
	lib := genlib.Lib2()
	src := buildCircuit(b, "s344")
	sd, err := flows.ScriptDelay(src, lib)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timing.Analyze(sd.Net, timing.MappedDelay{N: sd.Net}); err != nil {
			b.Fatal(err)
		}
	}
}
