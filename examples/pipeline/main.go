// pipeline: the negative results of Section IV.
//
// The paper is explicit about when the technique cannot help:
//
//   - "fully combinational I/O paths and pipelined circuits would not
//     benefit from our technique" (no feedback loops → the retiming-induced
//     don't cares have nothing to correlate), and
//   - circuits whose critical paths "did not contain any multiple-fanout
//     registers that could be retimed across their fanout stems" cannot be
//     resynthesized at all.
//
// This example demonstrates both refusals and shows that plain retiming is
// the right tool for the pipeline (it balances it to the optimum).
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/retime"
	"repro/internal/timing"
)

func main() {
	fmt.Println("== case 1: a feed-forward pipeline ==")
	pipe := bench.BuildPipelineExample()
	p0, err := timing.Period(pipe, timing.UnitDelay{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: %v, cycle time %.0f\n", pipe.Stat(), p0)

	res, err := core.Resynthesize(pipe, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if res.Applied {
		log.Fatal("unexpected: the pipeline was resynthesized")
	}
	fmt.Printf("resynthesis declined: %s\n", res.Reason)

	// Retiming, in contrast, balances the pipeline to the optimum.
	ret, info, err := retime.MinPeriod(pipe, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain retiming handles pipelines fine: %v\n", info)
	if p, _ := timing.Period(ret, timing.UnitDelay{}); p != info.PeriodAfter {
		log.Fatal("period mismatch")
	}
	fmt.Println()

	fmt.Println("== case 2: feedback, but single-fanout registers ==")
	sf := bench.BuildSingleFanoutExample()
	p1, _ := timing.Period(sf, timing.UnitDelay{})
	fmt.Printf("circuit: %v, cycle time %.0f\n", sf.Stat(), p1)
	res2, err := core.Resynthesize(sf, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if res2.Applied {
		log.Fatal("unexpected: single-fanout circuit was resynthesized")
	}
	fmt.Printf("resynthesis declined: %s\n", res2.Reason)
	fmt.Println()
	fmt.Println("compare with: go run ./examples/quickstart (the positive case)")
}
