// tradeoff: the performance/area trade-off of constrained min-area
// retiming ("The results demonstrate a favourable performance/area
// trade-off when compared with optimally retimed circuits").
//
// For a benchmark circuit, this example sweeps the clock-period target
// from the minimum achievable period up to the unretimed period and
// reports, for each target, the smallest register count that constrained
// min-area retiming can achieve — the classical retiming trade-off curve —
// and then shows where the resynthesized circuit lands relative to it.
//
// Run with: go run ./examples/tradeoff [circuit]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/retime"
	"repro/internal/seqverify"
	"repro/internal/sim"
)

func main() {
	name := "paper"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	var src *network.Network
	if name == "paper" {
		src = bench.BuildPaperExample()
	} else {
		c, ok := bench.ByName(name)
		if !ok {
			log.Fatalf("unknown circuit %q (use 'paper' or a Table I name)", name)
		}
		var err error
		src, err = c.Build()
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("circuit %s: %v\n", name, src.Stat())

	g, err := retime.BuildGraph(src, nil)
	if err != nil {
		log.Fatal(err)
	}
	p0, err := g.Period(nil)
	if err != nil {
		log.Fatal(err)
	}
	// The fastest achievable implementation anchors the sweep.
	fastest, info, err := retime.MinPeriod(src, nil)
	if err != nil {
		log.Fatalf("min-period retiming failed: %v (a legitimate Table I outcome)", err)
	}
	pMin := info.PeriodAfter
	fmt.Printf("unretimed period %.0f, minimum achievable period %.0f (unit delay)\n\n", p0, pMin)

	fmt.Printf("%-18s %8s %10s\n", "period target", "regs", "verified")
	for target := pMin; target <= p0+0.5; target++ {
		ret, mInfo, err := retime.MinAreaUnderPeriod(fastest, nil, target)
		if err != nil {
			fmt.Printf("%-18.0f %8s   (%v)\n", target, "-", err)
			continue
		}
		fmt.Printf("%-18.0f %8d %10s\n", target, mInfo.RegsAfter, verify(src, ret, 0))
	}

	// Where the paper's resynthesis lands.
	res, err := core.Resynthesize(src, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if !res.Applied {
		fmt.Printf("resynthesis declined: %s\n", res.Reason)
		return
	}
	fmt.Printf("resynthesis point:  period %.0f with %d registers %s\n",
		res.PeriodAfter, res.RegsAfter, verify(src, res.Network, res.PrefixK))
	fmt.Println("(the technique can land below the retiming-only trade-off curve when")
	fmt.Println(" the retiming-induced don't cares simplify the relocated logic)")
}

// verify checks equivalence (exact when the product state space is small,
// random simulation otherwise) and renders a table cell.
func verify(a, b *network.Network, k int) string {
	err := seqverify.Equivalent(a, b, seqverify.Options{Delay: k})
	switch {
	case err == nil:
		return "exact"
	case err == seqverify.ErrTooLarge:
		if sim.RandomEquivalent(a, b, k, 2000, 5) == nil {
			return "sim"
		}
		return "FAILED"
	default:
		return "FAILED"
	}
}
