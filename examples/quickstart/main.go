// Quickstart: the paper's Section III worked example, end to end.
//
// Builds the reconstructed Fig. 4 circuit, shows its unit-delay cycle time
// (3 gate delays), applies conventional min-period retiming (2), then the
// paper's resynthesis (1 — the optimum), and verifies every step with the
// product-machine equivalence checker under delayed replacement.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/blif"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/retime"
	"repro/internal/seqverify"
	"repro/internal/timing"
)

func main() {
	orig := bench.BuildPaperExample()
	fmt.Println("== Section III worked example (unit delay model) ==")
	fmt.Printf("original circuit: %v\n", orig.Stat())
	p0, err := timing.Period(orig, timing.UnitDelay{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cycle time after delay optimization: %.0f gate delays\n\n", p0)

	// Step 1: what conventional retiming can do (Fig. 4b).
	ret, info, err := retime.MinPeriod(orig, nil)
	if err != nil {
		log.Fatalf("retiming failed: %v", err)
	}
	fmt.Printf("conventional min-period retiming: %v\n", info)
	check(orig, ret, 0)
	fmt.Printf("  -> %.0f gate delays; conventional retiming cannot reduce the delay any further\n", info.PeriodAfter)
	fmt.Println("     (the v -> g1 -> g2 -> v feedback cycle carries one register across two gates)")
	fmt.Println()

	// Step 2: the paper's resynthesis (Fig. 5).
	res, err := core.Resynthesize(orig, core.Options{})
	if err != nil {
		log.Fatalf("resynthesis failed: %v", err)
	}
	if !res.Applied {
		log.Fatalf("resynthesis declined: %s", res.Reason)
	}
	fmt.Println("resynthesis with retiming-induced don't cares:")
	fmt.Printf("  gates duplicated for the fanout-free path: %d\n", res.Duplicated)
	fmt.Printf("  atomic fanout-stem moves (delayed-replacement prefix k): %d\n", res.PrefixK)
	fmt.Printf("  forward retimings across path gates: %d\n", res.ForwardMoves)
	fmt.Printf("  cones simplified using DCret: %d\n", res.Simplified)
	fmt.Printf("  cycle time: %.0f -> %.0f gate delays (the optimum)\n", res.PeriodBefore, res.PeriodAfter)
	fmt.Printf("  registers: %d -> %d after constrained min-area retiming\n", res.RegsBefore, res.RegsAfter)
	check(orig, res.Network, res.PrefixK)
	fmt.Println()

	fmt.Println("resynthesized circuit (BLIF):")
	if err := blif.Write(os.Stdout, res.Network); err != nil {
		log.Fatal(err)
	}
}

// check verifies sequential equivalence under a k-cycle delayed-replacement
// prefix and reports the result.
func check(a, b *network.Network, k int) {
	if err := seqverify.Equivalent(a, b, seqverify.Options{Delay: k}); err != nil {
		log.Fatalf("VERIFICATION FAILED: %v", err)
	}
	if k == 0 {
		fmt.Println("  verified: exact sequential equivalence (safe replacement)")
	} else {
		fmt.Printf("  verified: sequential equivalence after a %d-cycle power-up prefix (delayed replacement)\n", k)
	}
}
