// fsmopt: optimize an MCNC-style FSM through the full Table I pipeline.
//
// Parses an embedded KISS2 machine (bbtas by default), synthesizes it with
// binary state encoding, runs the three evaluation flows (script.delay,
// + retiming + combinational optimization, + resynthesis), prints the
// Reg/Clk/Area comparison, and verifies each result against the source
// machine by exact product-machine equivalence.
//
// Run with: go run ./examples/fsmopt [machine]
// where machine ∈ {bbtas, bbara, dk27, lion, train4, mc, beecount, shiftreg}
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/flows"
	"repro/internal/genlib"
	"repro/internal/kiss"
)

func main() {
	name := "bbtas"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	src, ok := bench.SmallFSMs()[name]
	if !ok {
		log.Fatalf("unknown machine %q (try bbtas, bbara, dk27, lion, train4, mc, beecount, shiftreg)", name)
	}
	fsm, err := kiss.ParseString(src, name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine %s: %d inputs, %d outputs, %d states, %d transitions, reset %s\n",
		name, fsm.NumIn, fsm.NumOut, len(fsm.States), len(fsm.Transitions), fsm.Reset)

	net, err := fsm.Synthesize(kiss.Binary)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binary-encoded network: %v\n\n", net.Stat())

	lib := genlib.Lib2()
	sd, ret, rsyn, err := flows.RunAll(net, lib)
	if err != nil {
		log.Fatal(err)
	}
	rows := []struct {
		flow string
		r    *flows.Result
	}{
		{"script.delay", sd},
		{"script.delay + retiming + comb.opt", ret},
		{"script.delay + resynthesis", rsyn},
	}
	fmt.Printf("%-36s %5s %8s %8s\n", "flow", "Reg", "Clk", "Area")
	for _, row := range rows {
		fmt.Printf("%-36s %5d %8.2f %8.0f", row.flow, row.r.Regs, row.r.Clk, row.r.Area)
		if row.r.Note != "" {
			fmt.Printf("  [%s]", row.r.Note)
		}
		fmt.Println()
	}
	fmt.Println()
	for _, row := range rows {
		if err := flows.Verify(net, row.r); err != nil {
			log.Fatalf("%s: VERIFICATION FAILED: %v", row.flow, err)
		}
	}
	fmt.Println("all three flow outputs verified sequentially equivalent to the source machine")

	// One-hot comparison as a bonus: the encodings must agree behaviourally.
	oneHot, err := fsm.Synthesize(kiss.OneHot)
	if err != nil {
		log.Fatal(err)
	}
	sdOH, err := flows.ScriptDelay(oneHot, lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\none-hot encoding for comparison: %d registers, clk %.2f, area %.0f\n",
		sdOH.Regs, sdOH.Clk, sdOH.Area)
}
