// Command resyn reads a sequential circuit (BLIF or KISS2), runs one of
// the evaluation flows or the raw resynthesis algorithm, and writes the
// result as BLIF with a statistics summary.
//
// Usage:
//
//	resyn -in circuit.blif [-kiss] [-flow script|retime|resyn|core] [-out out.blif] [-verify]
//	      [-substrate sop|aig] [-workers N] [-timeout 30s] [-pass-timeout 5s] [-trace] [-stats-json events.jsonl]
//	      [-partition on|off] [-order topo|positional] [-partition-nodes N] [-reorder]
//	      [-sweep] [-induction-k K]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/blif"
	"repro/internal/buildinfo"
	"repro/internal/flows"
	"repro/internal/genlib"
	"repro/internal/guard"
	"repro/internal/kiss"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/reach"
	"repro/internal/seqverify"
	"repro/internal/sim"
)

func main() {
	in := flag.String("in", "", "input file (BLIF, or KISS2 with -kiss)")
	isKiss := flag.Bool("kiss", false, "input is a KISS2 FSM (binary-encoded)")
	flow := flag.String("flow", "resyn", "flow: script | retime | resyn | core")
	substrate := flag.String("substrate", "sop", "technology-independent substrate: sop | aig")
	workers := flag.Int("workers", 0, "worker pool width for parallel passes (the AIG rewriter); <=0 = GOMAXPROCS. Results are identical at any width")
	out := flag.String("out", "", "output BLIF file (default: stdout summary only)")
	verify := flag.Bool("verify", true, "verify the result against the input")
	trace := flag.Bool("trace", false, "print the span tree with per-pass wall time and counters")
	statsJSON := flag.String("stats-json", "", "write the JSON-lines trace event stream to this file")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per flow; exceeding it degrades or fails with a typed error (0 = unbounded)")
	passTimeout := flag.Duration("pass-timeout", 0, "wall-clock budget per pass within a flow (0 = unbounded)")
	partition := flag.String("partition", "on", "partitioned transition relations for state enumeration: on | off")
	order := flag.String("order", "topo", "BDD variable order: topo | positional")
	partitionNodes := flag.Int("partition-nodes", 0, "cluster node-size threshold for -partition on (0 = default)")
	reorder := flag.Bool("reorder", false, "enable dynamic BDD variable reordering (sifting) on node-count blowup")
	simCycles := flag.Int("sim-cycles", sim.DefaultSpotCheck.CLI.Cycles, "random-simulation cycles for the -verify fallback when the state space is too large for the exact check")
	sweepOn := flag.Bool("sweep", false, "SAT-based sequential sweeping: prove register equivalences by K-induction when the state space exceeds the exact-reachability limit, both for don't-care extraction and for -verify")
	inductionK := flag.Int("induction-k", 1, "induction depth for -sweep proofs (1 = simple induction)")
	metricsOut := flag.String("metrics", "", "write a Prometheus text dump of run metrics to this file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println("resyn", buildinfo.Version())
		return
	}
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	reachLim, err := reach.FlagLimits(reach.DefaultLimits, *partition, *order, *partitionNodes, *reorder)
	if err != nil {
		fatal(err)
	}
	var tr *obs.Tracer
	if *trace || *statsJSON != "" || *metricsOut != "" {
		tr = obs.New()
		if *statsJSON != "" {
			jf, err := os.Create(*statsJSON)
			if err != nil {
				fatal(err)
			}
			defer jf.Close()
			tr.SetJSON(jf)
		}
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		tr.SetRegistry(reg)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var src *network.Network
	if *isKiss {
		fsm, err := kiss.Parse(f, *in)
		if err != nil {
			fatal(err)
		}
		src, err = fsm.Synthesize(kiss.Binary)
		if err != nil {
			fatal(err)
		}
	} else {
		src, err = blif.Read(f)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("input: %s (%v)\n", src.Name, src.Stat())

	lib := genlib.Lib2()
	ctx := context.Background()
	cfg := flows.Config{
		Tracer:     tr,
		Budget:     guard.Budget{Flow: *timeout, Pass: *passTimeout},
		Reach:      reachLim,
		Substrate:  *substrate,
		Workers:    *workers,
		Sweep:      *sweepOn,
		InductionK: *inductionK,
	}
	result, err := flows.RunFlow(ctx, *flow, src, lib, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("result: %v (delayed-replacement prefix k=%d)\n", result.Metrics, result.PrefixK)
	if *trace {
		fmt.Println()
		tr.WriteTree(os.Stdout)
	}
	if *statsJSON != "" {
		fmt.Printf("wrote trace events to %s\n", *statsJSON)
	}

	if *verify {
		verdict, err := seqverify.Check(ctx, src, result.Net, seqverify.Options{
			Delay:      result.PrefixK,
			Limits:     reachLim,
			Sweep:      *sweepOn,
			InductionK: *inductionK,
			Workers:    *workers,
			Tracer:     tr,
		})
		switch {
		case err == nil && verdict == seqverify.VerdictExact:
			fmt.Println("verify: exact product-machine equivalence PASSED")
		case err == nil:
			fmt.Printf("verify: %s PASSED (K-induction over the product state registers)\n", verdict)
		case errors.Is(err, seqverify.ErrTooLarge):
			if serr := sim.RandomEquivalent(src, result.Net, result.PrefixK, *simCycles, sim.DefaultSpotCheck.CLI.Seed); serr != nil {
				fatal(serr)
			}
			fmt.Printf("verify: %d-cycle random simulation PASSED (state space too large for exact check)\n", *simCycles)
		default:
			fatal(err)
		}
	}
	if *out != "" {
		g, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer g.Close()
		if err := blif.Write(g, result.Net); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, reg); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote metrics to %s\n", *metricsOut)
	}
}

// writeMetrics dumps the registry (plus a final runtime sample) as
// Prometheus text, the same exposition resynd serves from /metrics.
func writeMetrics(path string, reg *obs.Registry) error {
	reg.SampleRuntime()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	reg.WritePrometheus(f)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "resyn:", err)
	os.Exit(1)
}
