// Command resyn reads a sequential circuit (BLIF or KISS2), runs one of
// the evaluation flows or the raw resynthesis algorithm, and writes the
// result as BLIF with a statistics summary.
//
// Usage:
//
//	resyn -in circuit.blif [-kiss] [-flow script|retime|resyn|core] [-out out.blif] [-verify]
//	      [-trace] [-stats-json events.jsonl]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/blif"
	"repro/internal/core"
	"repro/internal/flows"
	"repro/internal/genlib"
	"repro/internal/kiss"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/seqverify"
	"repro/internal/sim"
	"repro/internal/timing"
)

func main() {
	in := flag.String("in", "", "input file (BLIF, or KISS2 with -kiss)")
	isKiss := flag.Bool("kiss", false, "input is a KISS2 FSM (binary-encoded)")
	flow := flag.String("flow", "resyn", "flow: script | retime | resyn | core")
	out := flag.String("out", "", "output BLIF file (default: stdout summary only)")
	verify := flag.Bool("verify", true, "verify the result against the input")
	trace := flag.Bool("trace", false, "print the span tree with per-pass wall time and counters")
	statsJSON := flag.String("stats-json", "", "write the JSON-lines trace event stream to this file")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	var tr *obs.Tracer
	if *trace || *statsJSON != "" {
		tr = obs.New()
		if *statsJSON != "" {
			jf, err := os.Create(*statsJSON)
			if err != nil {
				fatal(err)
			}
			defer jf.Close()
			tr.SetJSON(jf)
		}
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var src *network.Network
	if *isKiss {
		fsm, err := kiss.Parse(f, *in)
		if err != nil {
			fatal(err)
		}
		src, err = fsm.Synthesize(kiss.Binary)
		if err != nil {
			fatal(err)
		}
	} else {
		src, err = blif.Read(f)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("input: %s (%v)\n", src.Name, src.Stat())

	lib := genlib.Lib2()
	var result *flows.Result
	switch *flow {
	case "script":
		result, err = flows.ScriptDelayT(src, lib, tr)
	case "retime":
		var sd *flows.Result
		sd, err = flows.ScriptDelayT(src, lib, tr)
		if err == nil {
			result, err = flows.RetimeCombOptT(sd.Net, lib, tr)
		}
	case "resyn":
		var sd *flows.Result
		sd, err = flows.ScriptDelayT(src, lib, tr)
		if err == nil {
			result, err = flows.ResynthesisT(sd.Net, lib, tr)
		}
	case "core":
		// Raw Algorithm 1 under the unit-delay model, no mapping.
		res, cerr := core.ResynthesizeIterate(src, core.Options{Tracer: tr}, 4)
		if cerr != nil {
			fatal(cerr)
		}
		p, _ := timing.Period(res.Network, timing.UnitDelay{})
		result = &flows.Result{
			Net:     res.Network,
			PrefixK: res.PrefixK,
			Metrics: flows.Metrics{Regs: len(res.Network.Latches), Clk: p, Area: float64(res.Network.NumLits())},
		}
		if !res.Applied {
			result.Note = "not applied: " + res.Reason
		}
	default:
		fatal(fmt.Errorf("unknown flow %q", *flow))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("result: %v (delayed-replacement prefix k=%d)\n", result.Metrics, result.PrefixK)
	if *trace {
		fmt.Println()
		tr.WriteTree(os.Stdout)
	}
	if *statsJSON != "" {
		fmt.Printf("wrote trace events to %s\n", *statsJSON)
	}

	if *verify {
		err := seqverify.Equivalent(src, result.Net, seqverify.Options{Delay: result.PrefixK})
		switch {
		case err == nil:
			fmt.Println("verify: exact product-machine equivalence PASSED")
		case errors.Is(err, seqverify.ErrTooLarge):
			if serr := sim.RandomEquivalent(src, result.Net, result.PrefixK, 5000, 1); serr != nil {
				fatal(serr)
			}
			fmt.Println("verify: 5000-cycle random simulation PASSED (state space too large for exact check)")
		default:
			fatal(err)
		}
	}
	if *out != "" {
		g, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer g.Close()
		if err := blif.Write(g, result.Net); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "resyn:", err)
	os.Exit(1)
}
