package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/guard"
	"repro/internal/parexec"
	"repro/internal/seqverify"
	"repro/internal/sweep"
)

// satCircuitReport is one row of BENCH_sat.json: the exact-reachability
// attempt and the SAT sweep run side by side on the circuit's
// self-equivalence product, the same check -verify performs after a flow.
type satCircuitReport struct {
	Circuit string `json:"circuit"`
	Gates   int    `json:"gates"`
	Latches int    `json:"latches"`

	// ReachWallMS is the exact product-machine attempt (BDD reachability
	// under reach.DefaultLimits); ReachTooLarge marks the rows past the
	// 32-latch wall where that attempt refuses immediately.
	ReachWallMS   float64 `json:"reach_wall_ms"`
	ReachTooLarge bool    `json:"reach_too_large,omitempty"`

	// Sweep statistics of the K-induction proof over the product AIG.
	SweepWallMS float64 `json:"sweep_wall_ms"`
	Proved      int     `json:"proved"`
	Disproved   int     `json:"disproved"`
	Unknown     int     `json:"unknown"`
	ConstRegs   int     `json:"const_regs,omitempty"`
	Candidates  int     `json:"candidates"`
	Rounds      int     `json:"rounds"`
	SatCalls    int64   `json:"sat_calls"`
	Conflicts   int64   `json:"sat_conflicts"`
	Learned     int64   `json:"sat_learned_clauses"`

	// Verdict is what a verifying flow reports for this circuit: "exact"
	// when the product fits the BDD engine, "proved" when only the
	// induction proof succeeds, "spot-checked" when neither decides, and
	// "disproved" on a genuine counterexample (never on a healthy run).
	Verdict string `json:"verdict"`
	Error   string `json:"error,omitempty"`
}

type satBenchReport struct {
	Schema     string             `json:"schema"`
	InductionK int                `json:"induction_k"`
	Circuits   []satCircuitReport `json:"circuits"`
}

// runSatBench proves every circuit sequentially equivalent to a clone of
// itself twice — once with exact BDD reachability, once with the SAT-based
// K-induction sweep — and writes BENCH_sat.json (schema bench_sat/v1)
// recording which engine decided each row and at what cost. Rows past the
// 32-latch exact wall flip from "spot-checked" to "proved".
func runSatBench(suite []bench.Circuit, budget guard.Budget, workers, inductionK int, out string) {
	reports, err := parexec.Map(context.Background(), workers, suite,
		func(ctx context.Context, _ int, c bench.Circuit) (satCircuitReport, error) {
			return satBenchCircuit(ctx, c, budget, inductionK), nil
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	rep := satBenchReport{Schema: "bench_sat/v1", InductionK: inductionK}
	for _, cr := range reports {
		rep.Circuits = append(rep.Circuits, cr)
		status := cr.Verdict
		switch {
		case cr.Error != "":
			status = "FAILED: " + cr.Error
		case cr.ReachTooLarge:
			status = fmt.Sprintf("%s  %d classes, %d cex, %d unknown, %d conflicts, %.0fms",
				cr.Verdict, cr.Proved, cr.Disproved, cr.Unknown, cr.Conflicts, cr.SweepWallMS)
		default:
			status = fmt.Sprintf("%s  reach %.0fms vs sweep %.0fms",
				cr.Verdict, cr.ReachWallMS, cr.SweepWallMS)
		}
		fmt.Printf("%-10s %s\n", cr.Circuit, status)
	}
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d circuits)\n", out, len(rep.Circuits))
}

func satBenchCircuit(ctx context.Context, c bench.Circuit, budget guard.Budget, inductionK int) satCircuitReport {
	cr := satCircuitReport{Circuit: c.Name}
	src, err := c.Build()
	if err != nil {
		cr.Error = err.Error()
		return cr
	}
	cr.Gates = src.NumLogicNodes()
	cr.Latches = len(src.Latches)
	dup := src.Clone()
	if budget.Flow > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget.Flow)
		defer cancel()
	}

	start := time.Now()
	rerr := seqverify.EquivalentCtx(ctx, src, dup, seqverify.Options{})
	cr.ReachWallMS = float64(time.Since(start)) / float64(time.Millisecond)
	switch {
	case rerr == nil:
	case errors.Is(rerr, seqverify.ErrTooLarge):
		cr.ReachTooLarge = true
	default:
		cr.Error = rerr.Error()
		return cr
	}

	start = time.Now()
	res, serr := sweep.ProveEquivalent(ctx, src, dup, 0, sweep.Options{K: inductionK})
	cr.SweepWallMS = float64(time.Since(start)) / float64(time.Millisecond)
	if res != nil {
		cr.Proved = len(res.Classes)
		cr.Disproved = res.Cexes
		cr.Unknown = res.Unknowns
		cr.ConstRegs = len(res.Const)
		cr.Candidates = res.Candidates
		cr.Rounds = res.Rounds
		cr.SatCalls = res.SatCalls
		cr.Conflicts = res.Conflicts
		cr.Learned = res.Learned
	}

	switch {
	case rerr == nil:
		cr.Verdict = "exact"
	case serr == nil:
		cr.Verdict = "proved"
	case errors.Is(serr, sweep.ErrUnknown):
		cr.Verdict = "spot-checked"
	default:
		var neq *sweep.NotEquivalentError
		if errors.As(serr, &neq) {
			cr.Verdict = "disproved"
		}
		cr.Error = serr.Error()
	}
	return cr
}
