// Command benchflows runs the Table I benchmark registry through all
// three evaluation flows with tracing enabled and writes BENCH_flows.json:
// per-circuit metrics for each flow, per-pass span durations, and the
// aggregated transformation counters. The per-pass data is recovered from
// the tracer's JSON-lines event stream (via obs.ReadEvents), so this
// command doubles as an end-to-end consumer of the -stats-json format.
//
// Circuits run concurrently (-workers); each traces into a private tracer
// and reports are assembled in suite order, so the JSON document is
// independent of worker count (up to wall-clock fields).
//
// With -reach-bench the command instead benchmarks the implicit state
// enumeration itself: every selected circuit is analyzed twice — once with
// the clustered-partitioned transition relation, once with the monolithic
// one — and BENCH_reach.json records peak BDD nodes, frontier peaks,
// cluster counts and wall time for both, plus the monolithic/partitioned
// peak-node ratio.
//
// With -sim-bench the command benchmarks random simulation itself: every
// selected circuit runs the self-equivalence sweep once on the scalar
// simulator and once on the bit-parallel engine (internal/bitsim), and
// BENCH_sim.json records vectors/sec for both plus the speedup ratio.
//
// With -aig-bench the command compares the two technology-independent
// substrates (internal/flows Config.Substrate): every selected circuit —
// by default Table I plus the s38417-class Large suite — records the AIG
// build statistics (nodes, strash hit rate, levels, LUT depths), the
// restructuring loop's serial vs parallel walls and rewrite deltas, runs
// the script.delay flow once per substrate with per-pass span walls, and
// runs the restructuring pass of both substrates under the -aig-budget
// guard deadline to document which substrate still commits at scale. The
// result is BENCH_aig.json (schema bench_aig/v2).
//
// With -sat-bench the command benchmarks SAT-based sequential sweeping
// against exact reachability: every selected circuit — by default Table I
// plus the Large suite — is proved equivalent to a clone of itself with
// both engines, and BENCH_sat.json (schema bench_sat/v1) records per
// circuit the proved/disproved/unknown class counts, solver conflicts,
// sweep wall vs reach wall, and the verification verdict, which flips
// from spot-checked to proved on every row past the 32-latch exact wall.
//
// -cpuprofile and -memprofile write pprof profiles of the whole run (the
// same profiles resynd serves behind -debug), for attributing bench walls
// to passes offline.
//
// Usage:
//
//	benchflows [-out BENCH_flows.json] [-circuits ex2,bbtas,...] [-skip-large]
//	           [-workers N] [-timeout 60s] [-pass-timeout 10s]
//	           [-partition on|off] [-order topo|positional] [-partition-nodes N] [-reorder]
//	           [-reach-bench] [-reach-out BENCH_reach.json]
//	           [-sim-bench] [-sim-out BENCH_sim.json] [-sim-cycles N]
//	           [-aig-bench] [-aig-out BENCH_aig.json] [-aig-budget 1s]
//	           [-sat-bench] [-sat-out BENCH_sat.json] [-induction-k K]
//	           [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/bitsim"
	"repro/internal/buildinfo"
	"repro/internal/flows"
	"repro/internal/genlib"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/parexec"
	"repro/internal/reach"
	"repro/internal/sim"
)

type flowMetrics struct {
	Regs    int     `json:"regs"`
	Clk     float64 `json:"clk"`
	Area    float64 `json:"area"`
	Note    string  `json:"note,omitempty"`
	PrefixK int     `json:"prefix_k,omitempty"`
}

type circuitReport struct {
	Circuit  string                 `json:"circuit"`
	Gates    int                    `json:"gates"`
	Latches  int                    `json:"latches"`
	Flows    map[string]flowMetrics `json:"flows"`
	SpanMS   map[string]float64     `json:"span_ms"`
	Counters map[string]int64       `json:"counters"`
	WallMS   float64                `json:"wall_ms"`
	Error    string                 `json:"error,omitempty"`
	Skipped  bool                   `json:"skipped,omitempty"`
	// TraceSkipped counts malformed JSONL trace lines tolerated by
	// obs.ReadEvents (0 on a healthy run).
	TraceSkipped int `json:"trace_skipped,omitempty"`
}

type benchReport struct {
	Schema   string          `json:"schema"`
	Circuits []circuitReport `json:"circuits"`
}

func main() {
	out := flag.String("out", "BENCH_flows.json", "output JSON file")
	circuitsFlag := flag.String("circuits", "", "comma-separated circuit names (default: all of Table I)")
	skipLarge := flag.Bool("skip-large", false, "skip circuits with more than 1000 gates")
	workers := flag.Int("workers", 0, "parallel circuit evaluations (<=0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per flow; a circuit exceeding it reports a typed error instead of hanging the sweep (0 = unbounded)")
	passTimeout := flag.Duration("pass-timeout", 0, "wall-clock budget per pass within a flow (0 = unbounded)")
	partition := flag.String("partition", "on", "partitioned transition relations for state enumeration: on | off")
	order := flag.String("order", "topo", "BDD variable order: topo | positional")
	partitionNodes := flag.Int("partition-nodes", 0, "cluster node-size threshold for -partition on (0 = default)")
	reorder := flag.Bool("reorder", false, "enable dynamic BDD variable reordering (sifting) on node-count blowup")
	reachBench := flag.Bool("reach-bench", false, "benchmark partitioned vs monolithic reachability instead of the flows")
	reachOut := flag.String("reach-out", "BENCH_reach.json", "output JSON file for -reach-bench")
	simBench := flag.Bool("sim-bench", false, "benchmark scalar vs bit-parallel random simulation instead of the flows")
	simOut := flag.String("sim-out", "BENCH_sim.json", "output JSON file for -sim-bench")
	simCycles := flag.Int("sim-cycles", 256, "cycles per simulation sweep for -sim-bench")
	aigBench := flag.Bool("aig-bench", false, "benchmark the SOP vs AIG substrate instead of the flows")
	aigOut := flag.String("aig-out", "BENCH_aig.json", "output JSON file for -aig-bench")
	aigBudget := flag.Duration("aig-budget", time.Second, "guard pass deadline for the -aig-bench restructuring comparison (0 = unbounded)")
	satBench := flag.Bool("sat-bench", false, "benchmark SAT-sweep induction proofs vs exact reachability instead of the flows")
	satOut := flag.String("sat-out", "BENCH_sat.json", "output JSON file for -sat-bench")
	inductionK := flag.Int("induction-k", 1, "induction depth for -sat-bench proofs")
	metricsOut := flag.String("metrics", "", "write a Prometheus text dump of run metrics to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after GC) at exit to this file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println("benchflows", buildinfo.Version())
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchflows:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchflows:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchflows:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchflows:", err)
			}
		}()
	}

	reachLim, err := reach.FlagLimits(reach.DefaultLimits, *partition, *order, *partitionNodes, *reorder)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}

	suite := bench.TableI()
	if (*aigBench || *satBench) && *circuitsFlag == "" {
		// The substrate comparison and the sweep benchmark are about scale:
		// include the s38417-class suite the SOP substrate was built to
		// avoid — for -sat-bench these are exactly the rows whose verdict
		// must flip from spot-checked to proved.
		suite = append(suite, bench.Large()...)
	}
	if *circuitsFlag != "" {
		var filtered []bench.Circuit
		for _, name := range strings.Split(*circuitsFlag, ",") {
			c, ok := bench.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown circuit %q\n", name)
				os.Exit(1)
			}
			filtered = append(filtered, c)
		}
		suite = filtered
	}

	budget := guard.Budget{Flow: *timeout, Pass: *passTimeout}
	if *reachBench {
		runReachBench(suite, reachLim, budget, *workers, *skipLarge, *reachOut)
		return
	}
	if *simBench {
		runSimBench(suite, *workers, *skipLarge, *simCycles, *simOut)
		return
	}
	if *aigBench {
		runAigBench(suite, genlib.Lib2(), budget, *aigBudget, *workers, *skipLarge, *aigOut)
		return
	}
	if *satBench {
		runSatBench(suite, budget, *workers, *inductionK, *satOut)
		return
	}

	lib := genlib.Lib2()
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	rep := benchReport{Schema: "bench_flows/v1"}
	reports, err := parexec.Map(context.Background(), *workers, suite,
		func(_ context.Context, _ int, c bench.Circuit) (circuitReport, error) {
			return runCircuit(c, lib, budget, reachLim, *skipLarge, reg), nil
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	for i, cr := range reports {
		rep.Circuits = append(rep.Circuits, cr)
		status := "ok"
		switch {
		case cr.Skipped:
			status = "skipped"
		case cr.Error != "":
			status = "FAILED: " + cr.Error
		}
		fmt.Printf("%-10s %8.0fms  %s\n", suite[i].Name, cr.WallMS, status)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d circuits)\n", *out, len(rep.Circuits))
	if *metricsOut != "" {
		reg.SampleRuntime()
		mf, merr := os.Create(*metricsOut)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "benchflows:", merr)
			os.Exit(1)
		}
		reg.WritePrometheus(mf)
		mf.Close()
		fmt.Printf("wrote metrics to %s\n", *metricsOut)
	}
}

func runCircuit(c bench.Circuit, lib *genlib.Library, budget guard.Budget, lim reach.Limits, skipLarge bool, reg *obs.Registry) circuitReport {
	cr := circuitReport{Circuit: c.Name, Flows: map[string]flowMetrics{}}
	src, err := c.Build()
	if err != nil {
		cr.Error = err.Error()
		return cr
	}
	cr.Gates = src.NumLogicNodes()
	cr.Latches = len(src.Latches)
	if skipLarge && cr.Gates > 1000 {
		cr.Skipped = true
		return cr
	}
	var buf bytes.Buffer
	tr := obs.NewJSON(&buf)
	if reg != nil {
		tr.SetRegistry(reg)
	}
	start := time.Now()
	sd, ret, rsyn, err := flows.RunAllCtx(context.Background(), src, lib,
		flows.Config{Tracer: tr, Budget: budget, Reach: lim})
	cr.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		cr.Error = err.Error()
		return cr
	}
	cr.Flows["script_delay"] = asMetrics(sd)
	cr.Flows["retime_combopt"] = asMetrics(ret)
	cr.Flows["resynthesis"] = asMetrics(rsyn)
	cr.Counters = tr.Counters()

	// Per-pass durations come from the JSONL stream, not the in-memory
	// tree: this keeps the command an honest consumer of -stats-json.
	evs, skipped, err := obs.ReadEvents(&buf)
	if err != nil {
		cr.Error = "trace stream unreadable: " + err.Error()
		return cr
	}
	cr.TraceSkipped = skipped
	cr.SpanMS = map[string]float64{}
	for _, e := range evs {
		if e.Ev == "span_end" {
			cr.SpanMS[e.Span] += e.DurMs
		}
	}
	return cr
}

func asMetrics(r *flows.Result) flowMetrics {
	return flowMetrics{Regs: r.Regs, Clk: r.Clk, Area: r.Area, Note: r.Note, PrefixK: r.PrefixK}
}

// --- reach benchmark mode ---

type reachModeReport struct {
	PeakNodes    int     `json:"peak_bdd_nodes"`
	FrontierPeak int     `json:"frontier_peak_nodes"`
	Clusters     int     `json:"clusters"`
	ScheduleLen  int     `json:"quant_schedule_len"`
	SiftSwaps    int64   `json:"sift_swaps,omitempty"`
	WallMS       float64 `json:"wall_ms"`
	Error        string  `json:"error,omitempty"`
}

type reachCircuitReport struct {
	Circuit     string          `json:"circuit"`
	Latches     int             `json:"latches"`
	Depth       int             `json:"depth"`
	States      float64         `json:"reachable_states,omitempty"`
	Partitioned reachModeReport `json:"partitioned"`
	Monolithic  reachModeReport `json:"monolithic"`
	// PeakRatio is monolithic peak nodes / partitioned peak nodes; > 1
	// means partitioning reduced the peak.
	PeakRatio float64 `json:"peak_node_ratio,omitempty"`
	Skipped   bool    `json:"skipped,omitempty"`
	Error     string  `json:"error,omitempty"`
}

type reachBenchReport struct {
	Schema   string               `json:"schema"`
	Circuits []reachCircuitReport `json:"circuits"`
}

// runReachBench analyzes every circuit twice — partitioned and monolithic
// transition relation, same variable order — and writes the comparison.
func runReachBench(suite []bench.Circuit, lim reach.Limits, budget guard.Budget, workers int, skipLarge bool, out string) {
	reports, err := parexec.Map(context.Background(), workers, suite,
		func(_ context.Context, _ int, c bench.Circuit) (reachCircuitReport, error) {
			return reachBenchCircuit(c, lim, budget, skipLarge), nil
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	rep := reachBenchReport{Schema: "bench_reach/v1"}
	for _, cr := range reports {
		rep.Circuits = append(rep.Circuits, cr)
		status := "ok"
		switch {
		case cr.Skipped:
			status = "skipped"
		case cr.Error != "":
			status = "FAILED: " + cr.Error
		case cr.PeakRatio > 0:
			status = fmt.Sprintf("peak %d vs %d nodes (%.2fx), depth %d",
				cr.Partitioned.PeakNodes, cr.Monolithic.PeakNodes, cr.PeakRatio, cr.Depth)
		}
		fmt.Printf("%-10s %s\n", cr.Circuit, status)
	}
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d circuits)\n", out, len(rep.Circuits))
}

// --- sim benchmark mode ---

type simModeReport struct {
	Vectors    int64   `json:"vectors"`
	WallMS     float64 `json:"wall_ms"`
	VectorsSec float64 `json:"vectors_per_sec"`
	Error      string  `json:"error,omitempty"`
}

type simCircuitReport struct {
	Circuit string        `json:"circuit"`
	Gates   int           `json:"gates"`
	Latches int           `json:"latches"`
	PIs     int           `json:"pis"`
	Scalar  simModeReport `json:"scalar"`
	Bitsim  simModeReport `json:"bitsim"`
	// Speedup is bitsim vectors/sec over scalar vectors/sec.
	Speedup float64 `json:"speedup,omitempty"`
	Skipped bool    `json:"skipped,omitempty"`
	Error   string  `json:"error,omitempty"`
}

type simBenchReport struct {
	Schema   string             `json:"schema"`
	Cycles   int                `json:"cycles"`
	Circuits []simCircuitReport `json:"circuits"`
}

// runSimBench runs the self-equivalence random sweep on every circuit with
// both simulation engines and writes the vectors/sec comparison.
func runSimBench(suite []bench.Circuit, workers int, skipLarge bool, cycles int, out string) {
	reports, err := parexec.Map(context.Background(), workers, suite,
		func(_ context.Context, _ int, c bench.Circuit) (simCircuitReport, error) {
			return simBenchCircuit(c, cycles, skipLarge), nil
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	rep := simBenchReport{Schema: "bench_sim/v1", Cycles: cycles}
	for _, cr := range reports {
		rep.Circuits = append(rep.Circuits, cr)
		status := "ok"
		switch {
		case cr.Skipped:
			status = "skipped"
		case cr.Error != "":
			status = "FAILED: " + cr.Error
		case cr.Speedup > 0:
			status = fmt.Sprintf("%.0f vs %.0f vectors/s (%.1fx)",
				cr.Bitsim.VectorsSec, cr.Scalar.VectorsSec, cr.Speedup)
		}
		fmt.Printf("%-10s %s\n", cr.Circuit, status)
	}
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d circuits)\n", out, len(rep.Circuits))
}

// simMeasure repeats the sweep until it has accumulated enough wall time
// for a stable rate (at least ~100ms or 64 repetitions).
func simMeasure(vectorsPerRun int64, run func() error) simModeReport {
	mr := simModeReport{}
	defer func() {
		if r := recover(); r != nil {
			mr.Error = fmt.Sprint(r)
		}
	}()
	start := time.Now()
	reps := 0
	for ; reps < 64 && (reps == 0 || time.Since(start) < 100*time.Millisecond); reps++ {
		if err := run(); err != nil {
			mr.Error = err.Error()
			return mr
		}
	}
	el := time.Since(start)
	mr.Vectors = int64(reps) * vectorsPerRun
	mr.WallMS = float64(el) / float64(time.Millisecond)
	mr.VectorsSec = float64(mr.Vectors) / el.Seconds()
	return mr
}

func simBenchCircuit(c bench.Circuit, cycles int, skipLarge bool) simCircuitReport {
	cr := simCircuitReport{Circuit: c.Name}
	src, err := c.Build()
	if err != nil {
		cr.Error = err.Error()
		return cr
	}
	cr.Gates = src.NumLogicNodes()
	cr.Latches = len(src.Latches)
	cr.PIs = len(src.PIs)
	if skipLarge && cr.Gates > 1000 {
		cr.Skipped = true
		return cr
	}
	cr.Scalar = simMeasure(int64(cycles), func() error {
		return sim.RandomEquivalentScalar(src, src, 0, cycles, 1)
	})
	cr.Bitsim = simMeasure(int64(cycles)*bitsim.LanesPerWord, func() error {
		return sim.RandomEquivalent(src, src, 0, cycles, 1)
	})
	if cr.Scalar.Error != "" || cr.Bitsim.Error != "" {
		cr.Error = cr.Scalar.Error + cr.Bitsim.Error
	}
	if cr.Scalar.VectorsSec > 0 && cr.Bitsim.VectorsSec > 0 {
		cr.Speedup = cr.Bitsim.VectorsSec / cr.Scalar.VectorsSec
	}
	return cr
}

func reachBenchCircuit(c bench.Circuit, lim reach.Limits, budget guard.Budget, skipLarge bool) reachCircuitReport {
	cr := reachCircuitReport{Circuit: c.Name}
	src, err := c.Build()
	if err != nil {
		cr.Error = err.Error()
		return cr
	}
	cr.Latches = len(src.Latches)
	if skipLarge && src.NumLogicNodes() > 1000 {
		cr.Skipped = true
		return cr
	}
	run := func(mode reach.ImageMode) reachModeReport {
		mr := reachModeReport{}
		ml := lim
		ml.Image = mode
		ctx := context.Background()
		if budget.Flow > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, budget.Flow)
			defer cancel()
		}
		tr := obs.New()
		start := time.Now()
		a, err := reach.AnalyzeCtx(ctx, src, ml, tr)
		mr.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
		cnt := tr.Counters()
		mr.Clusters = int(cnt["reach_clusters"])
		mr.ScheduleLen = int(cnt["reach_quant_schedule_len"])
		if err != nil {
			mr.Error = err.Error()
			return mr
		}
		mr.PeakNodes = a.Stats.PeakNodes
		mr.FrontierPeak = a.FrontierPeakNodes
		mr.SiftSwaps = a.Stats.SiftSwaps
		if cr.Depth == 0 {
			cr.Depth = a.Depth
			cr.States = a.NumReachable()
		}
		return mr
	}
	cr.Partitioned = run(reach.ImagePartitioned)
	cr.Monolithic = run(reach.ImageMonolithic)
	if cr.Partitioned.Error != "" && cr.Monolithic.Error != "" {
		cr.Error = cr.Partitioned.Error
	}
	if cr.Partitioned.PeakNodes > 0 && cr.Monolithic.PeakNodes > 0 {
		cr.PeakRatio = float64(cr.Monolithic.PeakNodes) / float64(cr.Partitioned.PeakNodes)
	}
	return cr
}
