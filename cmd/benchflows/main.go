// Command benchflows runs the Table I benchmark registry through all
// three evaluation flows with tracing enabled and writes BENCH_flows.json:
// per-circuit metrics for each flow, per-pass span durations, and the
// aggregated transformation counters. The per-pass data is recovered from
// the tracer's JSON-lines event stream (via obs.ReadEvents), so this
// command doubles as an end-to-end consumer of the -stats-json format.
//
// Circuits run concurrently (-workers); each traces into a private tracer
// and reports are assembled in suite order, so the JSON document is
// independent of worker count (up to wall-clock fields).
//
// Usage:
//
//	benchflows [-out BENCH_flows.json] [-circuits ex2,bbtas,...] [-skip-large]
//	           [-workers N] [-timeout 60s] [-pass-timeout 10s]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/flows"
	"repro/internal/genlib"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/parexec"
)

type flowMetrics struct {
	Regs    int     `json:"regs"`
	Clk     float64 `json:"clk"`
	Area    float64 `json:"area"`
	Note    string  `json:"note,omitempty"`
	PrefixK int     `json:"prefix_k,omitempty"`
}

type circuitReport struct {
	Circuit  string                 `json:"circuit"`
	Gates    int                    `json:"gates"`
	Latches  int                    `json:"latches"`
	Flows    map[string]flowMetrics `json:"flows"`
	SpanMS   map[string]float64     `json:"span_ms"`
	Counters map[string]int64       `json:"counters"`
	WallMS   float64                `json:"wall_ms"`
	Error    string                 `json:"error,omitempty"`
	Skipped  bool                   `json:"skipped,omitempty"`
}

type benchReport struct {
	Schema   string          `json:"schema"`
	Circuits []circuitReport `json:"circuits"`
}

func main() {
	out := flag.String("out", "BENCH_flows.json", "output JSON file")
	circuitsFlag := flag.String("circuits", "", "comma-separated circuit names (default: all of Table I)")
	skipLarge := flag.Bool("skip-large", false, "skip circuits with more than 1000 gates")
	workers := flag.Int("workers", 0, "parallel circuit evaluations (<=0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per flow; a circuit exceeding it reports a typed error instead of hanging the sweep (0 = unbounded)")
	passTimeout := flag.Duration("pass-timeout", 0, "wall-clock budget per pass within a flow (0 = unbounded)")
	flag.Parse()

	suite := bench.TableI()
	if *circuitsFlag != "" {
		var filtered []bench.Circuit
		for _, name := range strings.Split(*circuitsFlag, ",") {
			c, ok := bench.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown circuit %q\n", name)
				os.Exit(1)
			}
			filtered = append(filtered, c)
		}
		suite = filtered
	}

	lib := genlib.Lib2()
	budget := guard.Budget{Flow: *timeout, Pass: *passTimeout}
	rep := benchReport{Schema: "bench_flows/v1"}
	reports, err := parexec.Map(context.Background(), *workers, suite,
		func(_ context.Context, _ int, c bench.Circuit) (circuitReport, error) {
			return runCircuit(c, lib, budget, *skipLarge), nil
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	for i, cr := range reports {
		rep.Circuits = append(rep.Circuits, cr)
		status := "ok"
		switch {
		case cr.Skipped:
			status = "skipped"
		case cr.Error != "":
			status = "FAILED: " + cr.Error
		}
		fmt.Printf("%-10s %8.0fms  %s\n", suite[i].Name, cr.WallMS, status)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d circuits)\n", *out, len(rep.Circuits))
}

func runCircuit(c bench.Circuit, lib *genlib.Library, budget guard.Budget, skipLarge bool) circuitReport {
	cr := circuitReport{Circuit: c.Name, Flows: map[string]flowMetrics{}}
	src, err := c.Build()
	if err != nil {
		cr.Error = err.Error()
		return cr
	}
	cr.Gates = src.NumLogicNodes()
	cr.Latches = len(src.Latches)
	if skipLarge && cr.Gates > 1000 {
		cr.Skipped = true
		return cr
	}
	var buf bytes.Buffer
	tr := obs.NewJSON(&buf)
	start := time.Now()
	sd, ret, rsyn, err := flows.RunAllCtx(context.Background(), src, lib,
		flows.Config{Tracer: tr, Budget: budget})
	cr.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		cr.Error = err.Error()
		return cr
	}
	cr.Flows["script_delay"] = asMetrics(sd)
	cr.Flows["retime_combopt"] = asMetrics(ret)
	cr.Flows["resynthesis"] = asMetrics(rsyn)
	cr.Counters = tr.Counters()

	// Per-pass durations come from the JSONL stream, not the in-memory
	// tree: this keeps the command an honest consumer of -stats-json.
	evs, err := obs.ReadEvents(&buf)
	if err != nil {
		cr.Error = "trace stream unreadable: " + err.Error()
		return cr
	}
	cr.SpanMS = map[string]float64{}
	for _, e := range evs {
		if e.Ev == "span_end" {
			cr.SpanMS[e.Span] += e.DurMs
		}
	}
	return cr
}

func asMetrics(r *flows.Result) flowMetrics {
	return flowMetrics{Regs: r.Regs, Clk: r.Clk, Area: r.Area, Note: r.Note, PrefixK: r.PrefixK}
}
