package main

// The -aig-bench mode: substrate comparison for the technology-independent
// restructuring step. The SOP substrate's two-level passes (dominated by
// eliminate's cover substitution) grow superlinearly with circuit size;
// the AIG substrate (convert + strash + NPN cut rewriting + balance) stays
// near-linear. This mode documents the raw walls, what that difference
// means under a guard deadline (which substrate's restructuring pass still
// commits on the s38417-class suite), and — new in bench_aig/v2 — the
// rewrite loop itself: serial vs parallel restructure walls, node/level
// deltas over the sweep+balance baseline, worker-width determinism, and
// the mapped clock of base vs rewritten subject networks.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/aig"
	"repro/internal/algebraic"
	"repro/internal/bench"
	"repro/internal/blif"
	"repro/internal/flows"
	"repro/internal/genlib"
	"repro/internal/guard"
	"repro/internal/mapper"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/parexec"
	"repro/internal/timing"
)

// aigStats describes the structurally hashed AIG built from the source
// circuit by the -substrate=aig restructuring (convert, sweep, balance),
// plus the k-feasible-cut LUT covering depths as a mapper-independent
// quality signal.
type aigStats struct {
	Nodes  int `json:"nodes"`  // AND vertices after sweep + balance
	Levels int `json:"levels"` // AND depth after balancing
	// StrashHits counts And() calls answered from the structural hash
	// table across both the conversion and the balancing rebuild;
	// StrashHitRate is hits over all And() constructions (hits + inserts).
	StrashHits    int64   `json:"strash_hits"`
	StrashHitRate float64 `json:"strash_hit_rate"`
	BuildMS       float64 `json:"build_ms"`
	Lut4          int     `json:"lut4_luts,omitempty"`
	Lut4Depth     int     `json:"lut4_depth,omitempty"`
	Lut6          int     `json:"lut6_luts,omitempty"`
	Lut6Depth     int     `json:"lut6_depth,omitempty"`
	Error         string  `json:"error,omitempty"`
}

// aigFlowReport is one script.delay run on one substrate. SpanMS carries
// the per-pass walls recovered from the trace stream, so the substrate
// step ("algebraic.optimize" vs "aig.restructure") and the shared mapper
// can be compared individually.
type aigFlowReport struct {
	Regs   int                `json:"regs"`
	Clk    float64            `json:"clk"`
	Area   float64            `json:"area"`
	Note   string             `json:"note,omitempty"`
	WallMS float64            `json:"wall_ms"`
	SpanMS map[string]float64 `json:"span_ms"`
	Error  string             `json:"error,omitempty"`
}

// aigGuardReport is one restructuring pass run transactionally under the
// -aig-budget deadline: Committed false means the pass was rolled back —
// on this suite, always because the deadline fired (the note says so).
type aigGuardReport struct {
	Committed bool    `json:"committed"`
	WallMS    float64 `json:"wall_ms"`
	Note      string  `json:"note,omitempty"`
}

// aigRewriteReport is the bench_aig/v2 addition: the full restructuring
// loop (sweep + NPN cut rewriting + balance) measured serial (workers=1)
// and parallel (workers=4), with the rewriter's own counters, a lowered-
// netlist determinism check across worker widths, and the mapped clock of
// the base (sweep+balance only, the v1 pipeline) versus the rewritten
// result. Gomaxprocs records how many cores the walls were measured on —
// on a single-core host the parallel wall cannot beat the serial one and
// the speedup column reads accordingly.
type aigRewriteReport struct {
	// Nodes/Levels describe the restructured AIG (after the rewrite loop);
	// the base sweep+balance numbers live in aigStats.
	Nodes       int   `json:"nodes"`
	Levels      int   `json:"levels"`
	RewriteGain int64 `json:"rewrite_gain"`
	CutsPruned  int64 `json:"cuts_pruned"`
	WaveCount   int64 `json:"wave_count"`
	// SerialMS / ParallelMS are full RestructureAIG walls at workers=1 and
	// workers=ParallelWorkers; Speedup is serial over parallel.
	SerialMS        float64 `json:"serial_ms"`
	ParallelMS      float64 `json:"parallel_ms"`
	ParallelWorkers int     `json:"parallel_workers"`
	Speedup         float64 `json:"speedup,omitempty"`
	Gomaxprocs      int     `json:"gomaxprocs"`
	// Deterministic reports whether the lowered subject netlists are
	// byte-identical across worker widths 1, 4, and 8.
	Deterministic bool `json:"deterministic"`
	// ClkBase / ClkRewrite are the mapped clock periods of the base and
	// rewritten subject networks through the shared genlib mapper.
	// ClkRewrite is the delivered period under the flow's keep-best remap
	// discipline (flows.bestRemap maps both candidates and keeps the
	// faster), so it is never worse than ClkBase.
	ClkBase    float64 `json:"clk_base,omitempty"`
	ClkRewrite float64 `json:"clk_rewrite,omitempty"`
	Error      string  `json:"error,omitempty"`
}

type aigCircuitReport struct {
	Circuit string                   `json:"circuit"`
	Gates   int                      `json:"gates"`
	Latches int                      `json:"latches"`
	Aig     aigStats                 `json:"aig"`
	Rewrite aigRewriteReport         `json:"rewrite"`
	Flows   map[string]aigFlowReport `json:"flows"` // "sop" | "aig"
	// OptSpeedup is the SOP optimize wall over the AIG restructure wall
	// inside the script flows — the substrate step alone, excluding the
	// shared mapper.
	OptSpeedup float64 `json:"opt_speedup,omitempty"`
	// FlowSpeedup is the end-to-end script.delay wall ratio (SOP / AIG).
	FlowSpeedup float64        `json:"flow_speedup,omitempty"`
	GuardSOP    aigGuardReport `json:"guard_sop"`
	GuardAIG    aigGuardReport `json:"guard_aig"`
	Skipped     bool           `json:"skipped,omitempty"`
	Error       string         `json:"error,omitempty"`
}

type aigBenchReport struct {
	Schema   string             `json:"schema"`
	BudgetMS float64            `json:"guard_budget_ms"`
	Circuits []aigCircuitReport `json:"circuits"`
}

// runAigBench compares the SOP and AIG substrates on every circuit and
// writes BENCH_aig.json.
func runAigBench(suite []bench.Circuit, lib *genlib.Library, budget guard.Budget, guardPass time.Duration, workers int, skipLarge bool, out string) {
	reports, err := parexec.Map(context.Background(), workers, suite,
		func(_ context.Context, _ int, c bench.Circuit) (aigCircuitReport, error) {
			return aigBenchCircuit(c, lib, budget, guardPass, skipLarge), nil
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	rep := aigBenchReport{
		Schema:   "bench_aig/v2",
		BudgetMS: float64(guardPass) / float64(time.Millisecond),
	}
	for _, cr := range reports {
		rep.Circuits = append(rep.Circuits, cr)
		status := "ok"
		switch {
		case cr.Skipped:
			status = "skipped"
		case cr.Error != "":
			status = "FAILED: " + cr.Error
		default:
			verdict := func(r aigGuardReport) string {
				if r.Committed {
					return "ok"
				}
				return "DNF"
			}
			det := "det"
			if !cr.Rewrite.Deterministic {
				det = "NONDET"
			}
			status = fmt.Sprintf("aig %d->%d ands L%d->%d gain %d  rw %.1f/%.1fms %s  opt %.1f/%.1fms (%.0fx)  guard sop=%s aig=%s",
				cr.Aig.Nodes, cr.Rewrite.Nodes, cr.Aig.Levels, cr.Rewrite.Levels,
				cr.Rewrite.RewriteGain, cr.Rewrite.SerialMS, cr.Rewrite.ParallelMS, det,
				leafSpanMS(cr.Flows[flows.SubstrateSOP].SpanMS, "algebraic.optimize"),
				leafSpanMS(cr.Flows[flows.SubstrateAIG].SpanMS, "aig.restructure"),
				cr.OptSpeedup, verdict(cr.GuardSOP), verdict(cr.GuardAIG))
		}
		fmt.Printf("%-10s %s\n", cr.Circuit, status)
	}
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d circuits)\n", out, len(rep.Circuits))
}

func aigBenchCircuit(c bench.Circuit, lib *genlib.Library, budget guard.Budget, guardPass time.Duration, skipLarge bool) aigCircuitReport {
	cr := aigCircuitReport{Circuit: c.Name, Flows: map[string]aigFlowReport{}}
	src, err := c.Build()
	if err != nil {
		cr.Error = err.Error()
		return cr
	}
	cr.Gates = src.NumLogicNodes()
	cr.Latches = len(src.Latches)
	if skipLarge && cr.Gates > 1000 {
		cr.Skipped = true
		return cr
	}
	var baseSubject *network.Network
	cr.Aig, baseSubject = buildAigStats(src)
	cr.Rewrite = buildRewriteStats(src, baseSubject, lib)
	for _, sub := range []string{flows.SubstrateSOP, flows.SubstrateAIG} {
		cr.Flows[sub] = aigFlowRun(src, lib, budget, sub)
	}
	cr.GuardSOP = guardedRestructure(src, "algebraic.optimize", guardPass,
		func(ctx context.Context, work *network.Network) (*network.Network, int, error) {
			if err := algebraic.OptimizeDelayCtx(ctx, work, nil); err != nil {
				return nil, 0, err
			}
			return work, 0, nil
		})
	cr.GuardAIG = guardedRestructure(src, "aig.restructure", guardPass,
		func(ctx context.Context, work *network.Network) (*network.Network, int, error) {
			out, rerr := flows.RestructureAIG(ctx, work, flows.Config{})
			return out, 0, rerr
		})
	sopOpt := leafSpanMS(cr.Flows[flows.SubstrateSOP].SpanMS, "algebraic.optimize")
	aigRes := leafSpanMS(cr.Flows[flows.SubstrateAIG].SpanMS, "aig.restructure")
	if sopOpt > 0 && aigRes > 0 {
		cr.OptSpeedup = sopOpt / aigRes
	}
	sopWall, aigWall := cr.Flows[flows.SubstrateSOP], cr.Flows[flows.SubstrateAIG]
	if sopWall.Error == "" && aigWall.Error == "" && sopWall.WallMS > 0 && aigWall.WallMS > 0 {
		cr.FlowSpeedup = sopWall.WallMS / aigWall.WallMS
	}
	return cr
}

// buildAigStats measures the AIG construction itself: conversion, sweep,
// balance and the LUT coverings, without any guard machinery. It also
// returns the lowered sweep+balance subject network — the pre-rewrite
// baseline the v2 rewrite columns compare against (nil on error).
func buildAigStats(src *network.Network) (aigStats, *network.Network) {
	st := aigStats{}
	start := time.Now()
	g, err := aig.FromNetwork(src)
	if err != nil {
		st.Error = err.Error()
		return st, nil
	}
	g.Sweep()
	bal := g.Balance()
	st.BuildMS = sinceMS(start)
	st.Nodes = bal.NumAnds()
	st.Levels = int(bal.Depth())
	st.StrashHits = g.StrashHits() + bal.StrashHits()
	if attempts := st.StrashHits + int64(g.NumAnds()) + int64(bal.NumAnds()); attempts > 0 {
		st.StrashHitRate = float64(st.StrashHits) / float64(attempts)
	}
	if m, merr := bal.MapForDelay(4); merr == nil {
		st.Lut4, st.Lut4Depth = m.NumLUTs(), int(m.Depth)
	}
	if m, merr := bal.MapForDelay(6); merr == nil {
		st.Lut6, st.Lut6Depth = m.NumLUTs(), int(m.Depth)
	}
	subject, serr := bal.ToSubjectNetwork()
	if serr != nil {
		st.Error = serr.Error()
		return st, nil
	}
	return st, subject
}

// buildRewriteStats measures the full restructuring loop at worker widths
// 1 and 4, checks lowered-netlist determinism against width 8, and maps
// both the base and rewritten subject networks for the clock comparison.
func buildRewriteStats(src, baseSubject *network.Network, lib *genlib.Library) aigRewriteReport {
	rr := aigRewriteReport{Gomaxprocs: runtime.GOMAXPROCS(0), ParallelWorkers: 4}
	aig.InitLibraries() // keep the one-time NPN table build out of the walls
	run := func(workers int) (*network.Network, map[string]int64, float64, error) {
		tr := obs.New()
		start := time.Now()
		net, err := flows.RestructureAIG(context.Background(), src,
			flows.Config{Tracer: tr, Workers: workers})
		return net, tr.Counters(), sinceMS(start), err
	}
	serialNet, cnt, serialMS, err := run(1)
	if err != nil {
		rr.Error = err.Error()
		return rr
	}
	rr.SerialMS = serialMS
	rr.Nodes = int(cnt["aig_nodes"])
	rr.Levels = int(cnt["aig_levels"])
	rr.RewriteGain = cnt["aig_rewrite_gain"]
	rr.CutsPruned = cnt["aig_cuts_pruned"]
	rr.WaveCount = cnt["aig_wave_count"]
	parNet, _, parMS, err := run(rr.ParallelWorkers)
	if err != nil {
		rr.Error = err.Error()
		return rr
	}
	rr.ParallelMS = parMS
	if parMS > 0 {
		rr.Speedup = serialMS / parMS
	}
	wideNet, _, _, err := run(8)
	if err != nil {
		rr.Error = err.Error()
		return rr
	}
	sb, e1 := loweredBytes(serialNet)
	pb, e2 := loweredBytes(parNet)
	wb, e3 := loweredBytes(wideNet)
	if e1 == nil && e2 == nil && e3 == nil {
		rr.Deterministic = bytes.Equal(sb, pb) && bytes.Equal(sb, wb)
	}
	if baseSubject != nil {
		if clk, cerr := mappedClk(baseSubject, lib); cerr == nil {
			rr.ClkBase = clk
		}
	}
	// ClkRewrite mirrors flows.bestRemap's keep-best remap discipline: the
	// delay flow maps both the restructured and the base candidate and keeps
	// the faster, so the delivered period is the better of the two mappings.
	// The mapper is structure-sensitive, so mapping the rewritten network
	// alone can regress slightly even when nodes and depth both improve.
	if clk, cerr := mappedClk(serialNet, lib); cerr == nil {
		rr.ClkRewrite = clk
		if rr.ClkBase > 0 && rr.ClkBase < rr.ClkRewrite {
			rr.ClkRewrite = rr.ClkBase
		}
	}
	return rr
}

// loweredBytes serializes a subject network to BLIF for byte comparison.
func loweredBytes(n *network.Network) ([]byte, error) {
	var b bytes.Buffer
	if err := blif.Write(&b, n); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// mappedClk maps a subject network through the shared genlib library and
// reports the mapped clock period.
func mappedClk(subject *network.Network, lib *genlib.Library) (float64, error) {
	m, err := mapper.MapDelayT(subject.Clone(), lib, nil)
	if err != nil {
		return 0, err
	}
	return timing.Period(m, timing.MappedDelay{N: m})
}

// aigFlowRun executes the script.delay flow on one substrate with a traced
// JSONL stream and recovers the per-pass walls from it (the same honest
// -stats-json consumption the default mode uses).
func aigFlowRun(src *network.Network, lib *genlib.Library, budget guard.Budget, substrate string) aigFlowReport {
	fr := aigFlowReport{SpanMS: map[string]float64{}}
	var buf bytes.Buffer
	tr := obs.NewJSON(&buf)
	start := time.Now()
	r, err := flows.RunFlow(context.Background(), "script", src, lib,
		flows.Config{Tracer: tr, Budget: budget, Substrate: substrate})
	fr.WallMS = sinceMS(start)
	if err != nil {
		fr.Error = err.Error()
		return fr
	}
	fr.Regs, fr.Clk, fr.Area, fr.Note = r.Regs, r.Clk, r.Area, r.Note
	evs, _, err := obs.ReadEvents(&buf)
	if err != nil {
		fr.Error = "trace stream unreadable: " + err.Error()
		return fr
	}
	for _, e := range evs {
		if e.Ev == "span_end" {
			fr.SpanMS[e.Span] += e.DurMs
		}
	}
	return fr
}

// guardedRestructure runs one substrate's restructuring pass transactionally
// under the -aig-budget deadline. The wall includes the transactional
// clone and the post-pass smoke check, exactly as the pass pays them
// inside a real flow. A deadline firing mid-pass is honoured at the pass's
// next cancellation point, so the wall of a DNF row can exceed the budget;
// Committed is the verdict.
func guardedRestructure(src *network.Network, pass string, deadline time.Duration, fn guard.PassFunc) aigGuardReport {
	start := time.Now()
	_, rep := guard.Tx(context.Background(), pass, src,
		guard.TxOptions{Budget: guard.Budget{Pass: deadline}}, fn)
	gr := aigGuardReport{Committed: rep.Committed, WallMS: sinceMS(start)}
	if !rep.Committed {
		gr.Note = rep.Note
	}
	return gr
}

func sinceMS(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// leafSpanMS sums the wall of every span whose path-qualified name ends in
// the given leaf (span names in the trace stream are slash-qualified by
// their ancestry, e.g. "flow.script_delay/guard.x/x").
func leafSpanMS(spans map[string]float64, leaf string) float64 {
	total := 0.0
	for name, ms := range spans {
		if name == leaf || strings.HasSuffix(name, "/"+leaf) {
			total += ms
		}
	}
	return total
}
