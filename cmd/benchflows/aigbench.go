package main

// The -aig-bench mode: substrate comparison for the technology-independent
// restructuring step. The SOP substrate's two-level passes (dominated by
// eliminate's cover substitution) grow superlinearly with circuit size;
// the AIG substrate (convert + strash + balance) stays near-linear. This
// mode documents both the raw walls and what that difference means under a
// guard deadline: which substrate's restructuring pass still commits on
// the s38417-class suite.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/aig"
	"repro/internal/algebraic"
	"repro/internal/bench"
	"repro/internal/flows"
	"repro/internal/genlib"
	"repro/internal/guard"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/parexec"
)

// aigStats describes the structurally hashed AIG built from the source
// circuit by the -substrate=aig restructuring (convert, sweep, balance),
// plus the k-feasible-cut LUT covering depths as a mapper-independent
// quality signal.
type aigStats struct {
	Nodes  int `json:"nodes"`  // AND vertices after sweep + balance
	Levels int `json:"levels"` // AND depth after balancing
	// StrashHits counts And() calls answered from the structural hash
	// table across both the conversion and the balancing rebuild;
	// StrashHitRate is hits over all And() constructions (hits + inserts).
	StrashHits    int64   `json:"strash_hits"`
	StrashHitRate float64 `json:"strash_hit_rate"`
	BuildMS       float64 `json:"build_ms"`
	Lut4          int     `json:"lut4_luts,omitempty"`
	Lut4Depth     int     `json:"lut4_depth,omitempty"`
	Lut6          int     `json:"lut6_luts,omitempty"`
	Lut6Depth     int     `json:"lut6_depth,omitempty"`
	Error         string  `json:"error,omitempty"`
}

// aigFlowReport is one script.delay run on one substrate. SpanMS carries
// the per-pass walls recovered from the trace stream, so the substrate
// step ("algebraic.optimize" vs "aig.restructure") and the shared mapper
// can be compared individually.
type aigFlowReport struct {
	Regs   int                `json:"regs"`
	Clk    float64            `json:"clk"`
	Area   float64            `json:"area"`
	Note   string             `json:"note,omitempty"`
	WallMS float64            `json:"wall_ms"`
	SpanMS map[string]float64 `json:"span_ms"`
	Error  string             `json:"error,omitempty"`
}

// aigGuardReport is one restructuring pass run transactionally under the
// -aig-budget deadline: Committed false means the pass was rolled back —
// on this suite, always because the deadline fired (the note says so).
type aigGuardReport struct {
	Committed bool    `json:"committed"`
	WallMS    float64 `json:"wall_ms"`
	Note      string  `json:"note,omitempty"`
}

type aigCircuitReport struct {
	Circuit string                   `json:"circuit"`
	Gates   int                      `json:"gates"`
	Latches int                      `json:"latches"`
	Aig     aigStats                 `json:"aig"`
	Flows   map[string]aigFlowReport `json:"flows"` // "sop" | "aig"
	// OptSpeedup is the SOP optimize wall over the AIG restructure wall
	// inside the script flows — the substrate step alone, excluding the
	// shared mapper.
	OptSpeedup float64 `json:"opt_speedup,omitempty"`
	// FlowSpeedup is the end-to-end script.delay wall ratio (SOP / AIG).
	FlowSpeedup float64        `json:"flow_speedup,omitempty"`
	GuardSOP    aigGuardReport `json:"guard_sop"`
	GuardAIG    aigGuardReport `json:"guard_aig"`
	Skipped     bool           `json:"skipped,omitempty"`
	Error       string         `json:"error,omitempty"`
}

type aigBenchReport struct {
	Schema   string             `json:"schema"`
	BudgetMS float64            `json:"guard_budget_ms"`
	Circuits []aigCircuitReport `json:"circuits"`
}

// runAigBench compares the SOP and AIG substrates on every circuit and
// writes BENCH_aig.json.
func runAigBench(suite []bench.Circuit, lib *genlib.Library, budget guard.Budget, guardPass time.Duration, workers int, skipLarge bool, out string) {
	reports, err := parexec.Map(context.Background(), workers, suite,
		func(_ context.Context, _ int, c bench.Circuit) (aigCircuitReport, error) {
			return aigBenchCircuit(c, lib, budget, guardPass, skipLarge), nil
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	rep := aigBenchReport{
		Schema:   "bench_aig/v1",
		BudgetMS: float64(guardPass) / float64(time.Millisecond),
	}
	for _, cr := range reports {
		rep.Circuits = append(rep.Circuits, cr)
		status := "ok"
		switch {
		case cr.Skipped:
			status = "skipped"
		case cr.Error != "":
			status = "FAILED: " + cr.Error
		default:
			verdict := func(r aigGuardReport) string {
				if r.Committed {
					return "ok"
				}
				return "DNF"
			}
			status = fmt.Sprintf("aig %d ands L%d hits %.2f%%  opt %.1f/%.1fms (%.0fx)  guard sop=%s aig=%s",
				cr.Aig.Nodes, cr.Aig.Levels, 100*cr.Aig.StrashHitRate,
				leafSpanMS(cr.Flows[flows.SubstrateSOP].SpanMS, "algebraic.optimize"),
				leafSpanMS(cr.Flows[flows.SubstrateAIG].SpanMS, "aig.restructure"),
				cr.OptSpeedup, verdict(cr.GuardSOP), verdict(cr.GuardAIG))
		}
		fmt.Printf("%-10s %s\n", cr.Circuit, status)
	}
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchflows:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d circuits)\n", out, len(rep.Circuits))
}

func aigBenchCircuit(c bench.Circuit, lib *genlib.Library, budget guard.Budget, guardPass time.Duration, skipLarge bool) aigCircuitReport {
	cr := aigCircuitReport{Circuit: c.Name, Flows: map[string]aigFlowReport{}}
	src, err := c.Build()
	if err != nil {
		cr.Error = err.Error()
		return cr
	}
	cr.Gates = src.NumLogicNodes()
	cr.Latches = len(src.Latches)
	if skipLarge && cr.Gates > 1000 {
		cr.Skipped = true
		return cr
	}
	cr.Aig = buildAigStats(src)
	for _, sub := range []string{flows.SubstrateSOP, flows.SubstrateAIG} {
		cr.Flows[sub] = aigFlowRun(src, lib, budget, sub)
	}
	cr.GuardSOP = guardedRestructure(src, "algebraic.optimize", guardPass,
		func(ctx context.Context, work *network.Network) (*network.Network, int, error) {
			if err := algebraic.OptimizeDelayCtx(ctx, work, nil); err != nil {
				return nil, 0, err
			}
			return work, 0, nil
		})
	cr.GuardAIG = guardedRestructure(src, "aig.restructure", guardPass,
		func(_ context.Context, work *network.Network) (*network.Network, int, error) {
			out, rerr := flows.RestructureAIG(work, nil)
			return out, 0, rerr
		})
	sopOpt := leafSpanMS(cr.Flows[flows.SubstrateSOP].SpanMS, "algebraic.optimize")
	aigRes := leafSpanMS(cr.Flows[flows.SubstrateAIG].SpanMS, "aig.restructure")
	if sopOpt > 0 && aigRes > 0 {
		cr.OptSpeedup = sopOpt / aigRes
	}
	sopWall, aigWall := cr.Flows[flows.SubstrateSOP], cr.Flows[flows.SubstrateAIG]
	if sopWall.Error == "" && aigWall.Error == "" && sopWall.WallMS > 0 && aigWall.WallMS > 0 {
		cr.FlowSpeedup = sopWall.WallMS / aigWall.WallMS
	}
	return cr
}

// buildAigStats measures the AIG construction itself: conversion, sweep,
// balance and the LUT coverings, without any guard machinery.
func buildAigStats(src *network.Network) aigStats {
	st := aigStats{}
	start := time.Now()
	g, err := aig.FromNetwork(src)
	if err != nil {
		st.Error = err.Error()
		return st
	}
	g.Sweep()
	bal := g.Balance()
	st.BuildMS = sinceMS(start)
	st.Nodes = bal.NumAnds()
	st.Levels = int(bal.Depth())
	st.StrashHits = g.StrashHits() + bal.StrashHits()
	if attempts := st.StrashHits + int64(g.NumAnds()) + int64(bal.NumAnds()); attempts > 0 {
		st.StrashHitRate = float64(st.StrashHits) / float64(attempts)
	}
	if m, merr := bal.MapForDelay(4); merr == nil {
		st.Lut4, st.Lut4Depth = m.NumLUTs(), int(m.Depth)
	}
	if m, merr := bal.MapForDelay(6); merr == nil {
		st.Lut6, st.Lut6Depth = m.NumLUTs(), int(m.Depth)
	}
	return st
}

// aigFlowRun executes the script.delay flow on one substrate with a traced
// JSONL stream and recovers the per-pass walls from it (the same honest
// -stats-json consumption the default mode uses).
func aigFlowRun(src *network.Network, lib *genlib.Library, budget guard.Budget, substrate string) aigFlowReport {
	fr := aigFlowReport{SpanMS: map[string]float64{}}
	var buf bytes.Buffer
	tr := obs.NewJSON(&buf)
	start := time.Now()
	r, err := flows.RunFlow(context.Background(), "script", src, lib,
		flows.Config{Tracer: tr, Budget: budget, Substrate: substrate})
	fr.WallMS = sinceMS(start)
	if err != nil {
		fr.Error = err.Error()
		return fr
	}
	fr.Regs, fr.Clk, fr.Area, fr.Note = r.Regs, r.Clk, r.Area, r.Note
	evs, _, err := obs.ReadEvents(&buf)
	if err != nil {
		fr.Error = "trace stream unreadable: " + err.Error()
		return fr
	}
	for _, e := range evs {
		if e.Ev == "span_end" {
			fr.SpanMS[e.Span] += e.DurMs
		}
	}
	return fr
}

// guardedRestructure runs one substrate's restructuring pass transactionally
// under the -aig-budget deadline. The wall includes the transactional
// clone and the post-pass smoke check, exactly as the pass pays them
// inside a real flow. A deadline firing mid-pass is honoured at the pass's
// next cancellation point, so the wall of a DNF row can exceed the budget;
// Committed is the verdict.
func guardedRestructure(src *network.Network, pass string, deadline time.Duration, fn guard.PassFunc) aigGuardReport {
	start := time.Now()
	_, rep := guard.Tx(context.Background(), pass, src,
		guard.TxOptions{Budget: guard.Budget{Pass: deadline}}, fn)
	gr := aigGuardReport{Committed: rep.Committed, WallMS: sinceMS(start)}
	if !rep.Committed {
		gr.Note = rep.Note
	}
	return gr
}

func sinceMS(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// leafSpanMS sums the wall of every span whose path-qualified name ends in
// the given leaf (span names in the trace stream are slash-qualified by
// their ancestry, e.g. "flow.script_delay/guard.x/x").
func leafSpanMS(spans map[string]float64, leaf string) float64 {
	total := 0.0
	for name, ms := range spans {
		if name == leaf || strings.HasSuffix(name, "/"+leaf) {
			total += ms
		}
	}
	return total
}
