// Command tablegen regenerates Table I of the paper: for every benchmark
// circuit it runs the three flows (script.delay, script.delay + retiming +
// combinational optimization, script.delay + resynthesis) and prints the
// register count, clock period and mapped area of each, verifying every
// flow output against the source circuit.
//
// Usage:
//
//	tablegen [-circuits ex2,bbtas,...] [-verify] [-skip-large] [-timeout 60s]
//	         [-pass-timeout 10s] [-trace] [-stats-json events.jsonl]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/flows"
	"repro/internal/genlib"
	"repro/internal/guard"
	"repro/internal/obs"
)

func main() {
	circuitsFlag := flag.String("circuits", "", "comma-separated circuit names (default: all of Table I)")
	verify := flag.Bool("verify", true, "verify every flow output against the source circuit")
	skipLarge := flag.Bool("skip-large", false, "skip circuits with more than 1000 gates")
	trace := flag.Bool("trace", false, "print the per-circuit span tree with wall time and counters")
	statsJSON := flag.String("stats-json", "", "write the JSON-lines trace event stream to this file")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per flow; a circuit exceeding it reports a typed error instead of stalling the table (0 = unbounded)")
	passTimeout := flag.Duration("pass-timeout", 0, "wall-clock budget per pass within a flow (0 = unbounded)")
	flag.Parse()

	var tr *obs.Tracer
	if *trace || *statsJSON != "" {
		tr = obs.New()
		if *statsJSON != "" {
			jf, err := os.Create(*statsJSON)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tablegen:", err)
				os.Exit(1)
			}
			defer jf.Close()
			tr.SetJSON(jf)
		}
	}

	suite := bench.TableI()
	if *circuitsFlag != "" {
		var filtered []bench.Circuit
		for _, name := range strings.Split(*circuitsFlag, ",") {
			c, ok := bench.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown circuit %q\n", name)
				os.Exit(1)
			}
			filtered = append(filtered, c)
		}
		suite = filtered
	}

	lib := genlib.Lib2()
	fmt.Println("TABLE I — Experimental results: applying the resynthesis algorithm")
	fmt.Println("(substrate differs from the paper's SIS/lib2 testbed; compare shapes, not absolutes)")
	fmt.Println()
	fmt.Printf("%-8s | %-22s | %-30s | %-30s\n", "", "script.delay", "+ retiming + comb.opt", "+ resynthesis")
	fmt.Printf("%-8s | %5s %7s %7s | %5s %7s %7s %-8s | %5s %7s %7s %-8s\n",
		"Circuit", "Reg", "Clk", "Area", "Reg", "Clk", "Area", "note", "Reg", "Clk", "Area", "note")
	fmt.Println(strings.Repeat("-", 118))

	wins, applicable := 0, 0
	for _, c := range suite {
		src, err := c.Build()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: build failed: %v\n", c.Name, err)
			continue
		}
		if *skipLarge && src.NumLogicNodes() > 1000 {
			fmt.Printf("%-8s | skipped (large)\n", c.Name)
			continue
		}
		start := time.Now()
		csp := tr.Begin(c.Name)
		sd, ret, rsyn, err := flows.RunAllCtx(context.Background(), src, lib, flows.Config{
			Tracer: tr,
			Budget: guard.Budget{Flow: *timeout, Pass: *passTimeout},
		})
		csp.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: flow failed: %v\n", c.Name, err)
			continue
		}
		if *verify {
			for i, r := range []*flows.Result{sd, ret, rsyn} {
				if err := flows.Verify(src, r); err != nil {
					fmt.Fprintf(os.Stderr, "%s: flow %d FAILED VERIFICATION: %v\n", c.Name, i, err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("%-8s | %5d %7.2f %7.0f | %5d %7.2f %7.0f %-8s | %5d %7.2f %7.0f %-8s  [%s]\n",
			c.Name,
			sd.Regs, sd.Clk, sd.Area,
			ret.Regs, ret.Clk, ret.Area, short(ret.Note),
			rsyn.Regs, rsyn.Clk, rsyn.Area, short(rsyn.Note),
			time.Since(start).Round(time.Millisecond))
		if rsyn.Note == "" {
			applicable++
			if rsyn.Clk <= ret.Clk {
				wins++
			}
		}
	}
	fmt.Println(strings.Repeat("-", 118))
	fmt.Printf("resynthesis ≤ retiming clock on %d/%d applicable circuits (all outputs verified: %v)\n",
		wins, applicable, *verify)
	if *trace {
		fmt.Println()
		tr.WriteTree(os.Stdout)
	}
}

func short(s string) string {
	if s == "" {
		return ""
	}
	if i := strings.Index(s, ":"); i > 0 {
		s = s[:i]
	}
	if len(s) > 8 {
		s = s[:8]
	}
	return s
}
