// Command tablegen regenerates Table I of the paper: for every benchmark
// circuit it runs the three flows (script.delay, script.delay + retiming +
// combinational optimization, script.delay + resynthesis) and prints the
// register count, clock period and mapped area of each, verifying every
// flow output against the source circuit.
//
// Circuits are evaluated in parallel (-workers); the table is byte-
// identical for any worker count. Per-row wall times are opt-in (-times)
// because they are the one non-deterministic ingredient.
//
// Usage:
//
//	tablegen [-circuits ex2,bbtas,...] [-verify] [-skip-large] [-workers N]
//	         [-times] [-timeout 60s] [-pass-timeout 10s] [-trace]
//	         [-substrate sop|aig] [-stats-json events.jsonl]
//	         [-partition on|off] [-order topo|positional] [-partition-nodes N] [-reorder]
//	         [-sweep] [-induction-k K]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/reach"
	"repro/internal/table"
)

func main() {
	circuitsFlag := flag.String("circuits", "", "comma-separated circuit names (default: all of Table I)")
	verify := flag.Bool("verify", true, "verify every flow output against the source circuit")
	skipLarge := flag.Bool("skip-large", false, "skip circuits with more than 1000 gates")
	workers := flag.Int("workers", 0, "parallel circuit evaluations (<=0 = GOMAXPROCS)")
	times := flag.Bool("times", false, "append per-circuit wall time to each row (breaks byte-stable output)")
	trace := flag.Bool("trace", false, "print the per-circuit span tree with wall time and counters")
	statsJSON := flag.String("stats-json", "", "write the JSON-lines trace event stream to this file")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per flow; a circuit exceeding it reports a typed error instead of stalling the table (0 = unbounded)")
	passTimeout := flag.Duration("pass-timeout", 0, "wall-clock budget per pass within a flow (0 = unbounded)")
	substrate := flag.String("substrate", "sop", "technology-independent substrate for the flows: sop | aig")
	partition := flag.String("partition", "on", "partitioned transition relations for state enumeration: on | off")
	order := flag.String("order", "topo", "BDD variable order: topo | positional")
	partitionNodes := flag.Int("partition-nodes", 0, "cluster node-size threshold for -partition on (0 = default)")
	reorder := flag.Bool("reorder", false, "enable dynamic BDD variable reordering (sifting) on node-count blowup")
	sweepOn := flag.Bool("sweep", false, "SAT-based sequential sweeping: prove register equivalences by K-induction past the exact-reachability limit, for don't-cares and verification")
	inductionK := flag.Int("induction-k", 1, "induction depth for -sweep proofs (1 = simple induction)")
	metricsOut := flag.String("metrics", "", "write a Prometheus text dump of run metrics to this file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println("tablegen", buildinfo.Version())
		return
	}

	reachLim, err := reach.FlagLimits(reach.DefaultLimits, *partition, *order, *partitionNodes, *reorder)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tablegen:", err)
		os.Exit(1)
	}
	opt := table.Options{
		Verify:     *verify,
		SkipLarge:  *skipLarge,
		Workers:    *workers,
		ShowTimes:  *times,
		Budget:     guard.Budget{Flow: *timeout, Pass: *passTimeout},
		Reach:      reachLim,
		Substrate:  *substrate,
		Sweep:      *sweepOn,
		InductionK: *inductionK,
	}
	if *circuitsFlag != "" {
		opt.Circuits = strings.Split(*circuitsFlag, ",")
	}
	if *trace {
		opt.Tracer = obs.New()
	}
	if *metricsOut != "" {
		opt.Registry = obs.NewRegistry()
	}
	if *statsJSON != "" {
		jf, err := os.Create(*statsJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tablegen:", err)
			os.Exit(1)
		}
		defer jf.Close()
		opt.JSON = jf
	}

	_, err = table.Run(context.Background(), os.Stdout, os.Stderr, opt)
	if *trace {
		fmt.Println()
		opt.Tracer.WriteTree(os.Stdout)
	}
	if *metricsOut != "" {
		opt.Registry.SampleRuntime()
		mf, merr := os.Create(*metricsOut)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "tablegen:", merr)
			os.Exit(1)
		}
		opt.Registry.WritePrometheus(mf)
		mf.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tablegen:", err)
		os.Exit(1)
	}
}
