// Command resynd serves the resynthesis flows over HTTP: submit a netlist
// and a flow name, follow per-pass progress live over SSE, and scrape
// Prometheus metrics. Identical submissions are content-addressed, so
// repeats are answered from the job cache.
//
// Usage:
//
//	resynd [-addr :8080] [-workers N] [-queue N] [-job-timeout 5m]
//	       [-timeout 1m] [-pass-timeout 30s] [-debug]
//	       [-partition on|off] [-order topo|positional] [-partition-nodes N] [-reorder]
//
//	resynd -loadgen [-target http://host:8080] [-qps 2] [-duration 10s]
//	       [-circuits bbtas,s27,ex6] [-flow resyn] [-loadgen-verify] [-out BENCH_serve.json]
//
// With -loadgen and no -target, an in-process server is booted on an
// ephemeral port and torn down after the run, so a single command produces
// a self-contained BENCH_serve.json.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/guard"
	"repro/internal/reach"
	"repro/internal/serve"
	"repro/internal/sim"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent jobs (<=0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "queued jobs before submissions shed with 503")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "wall-clock budget per job, flows + verification (0 = unbounded)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per flow within a job (0 = unbounded)")
	passTimeout := flag.Duration("pass-timeout", 0, "wall-clock budget per pass within a flow (0 = unbounded)")
	debug := flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
	partition := flag.String("partition", "on", "partitioned transition relations for state enumeration: on | off")
	order := flag.String("order", "topo", "BDD variable order: topo | positional")
	partitionNodes := flag.Int("partition-nodes", 0, "cluster node-size threshold for -partition on (0 = default)")
	reorder := flag.Bool("reorder", false, "enable dynamic BDD variable reordering (sifting) on node-count blowup")
	simCycles := flag.Int("sim-cycles", sim.DefaultSpotCheck.CLI.Cycles, "random-simulation cycles for the verification fallback")
	version := flag.Bool("version", false, "print version and exit")

	loadgen := flag.Bool("loadgen", false, "run the load generator instead of serving")
	target := flag.String("target", "", "loadgen: base URL of a running resynd (empty = boot an in-process server)")
	qps := flag.Float64("qps", 2, "loadgen: submissions per second")
	duration := flag.Duration("duration", 10*time.Second, "loadgen: submission window")
	circuits := flag.String("circuits", "", "loadgen: comma-separated bench circuits (default bbtas,s27,ex6)")
	flow := flag.String("flow", "resyn", "loadgen: flow submitted with every request")
	lgVerify := flag.Bool("loadgen-verify", false, "loadgen: request verification on every job")
	out := flag.String("out", "BENCH_serve.json", "loadgen: output report file")
	flag.Parse()

	if *version {
		fmt.Println("resynd", buildinfo.Version())
		return
	}
	reachLim, err := reach.FlagLimits(reach.DefaultLimits, *partition, *order, *partitionNodes, *reorder)
	if err != nil {
		fatal(err)
	}
	cfg := serve.Config{
		Workers:   *workers,
		Queue:     *queue,
		Budget:    guard.Budget{Job: *jobTimeout, Flow: *timeout, Pass: *passTimeout},
		Reach:     reachLim,
		SimCycles: *simCycles,
		Version:   buildinfo.Version(),
	}

	if *loadgen {
		if err := runLoadgen(cfg, *target, *qps, *duration, *circuits, *flow, *lgVerify, *out, *debug); err != nil {
			fatal(err)
		}
		return
	}

	s := serve.New(cfg)
	defer s.Close()
	stopSampler := s.Registry().StartRuntimeSampler(5 * time.Second)
	defer stopSampler()

	srv := &http.Server{Addr: *addr, Handler: s.Handler(*debug)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("resynd %s listening on %s (workers=%d queue=%d debug=%v)\n",
		buildinfo.Version(), *addr, *workers, *queue, *debug)

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		fmt.Println("resynd: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shCtx)
	}
}

// runLoadgen replays benchmark traffic against target (or an in-process
// server when target is empty) and writes the bench_serve/v1 report.
func runLoadgen(cfg serve.Config, target string, qps float64, duration time.Duration, circuits, flow string, verify bool, out string, debug bool) error {
	var names []string
	if circuits != "" {
		for _, n := range strings.Split(circuits, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if target == "" {
		s := serve.New(cfg)
		defer s.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: s.Handler(debug)}
		go srv.Serve(ln)
		defer srv.Close()
		target = "http://" + ln.Addr().String()
		fmt.Printf("resynd loadgen: in-process server at %s\n", target)
	}
	rep, err := serve.RunLoad(serve.LoadConfig{
		Target:   target,
		QPS:      qps,
		Duration: duration,
		Circuits: names,
		Flow:     flow,
		Verify:   verify,
		Log:      os.Stderr,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d jobs, p50 %.1fms p99 %.1fms, %.2f jobs/s, cache hit rate %.2f\n",
		out, rep.Completed, rep.LatencyMsP50, rep.LatencyMsP99, rep.JobsPerSec, rep.CacheHitRate)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "resynd:", err)
	os.Exit(1)
}
