// Command resynd serves the resynthesis flows over HTTP: submit a netlist
// and a flow name, follow per-pass progress live over SSE, and scrape
// Prometheus metrics. Identical submissions are content-addressed, so
// repeats are answered from the job cache.
//
// With -data-dir the service is crash-safe: every job transition is a
// CRC-checked record in an append-only, fsync-batched log, and a restart
// replays it — finished jobs come back as cache entries, interrupted ones
// re-run. SIGTERM drains gracefully: new submissions get 503 + Retry-After,
// in-flight jobs finish (up to -drain-timeout), the log is synced, and the
// process exits 0.
//
// Usage:
//
//	resynd [-addr :8080] [-workers N] [-queue N] [-job-timeout 5m]
//	       [-timeout 1m] [-pass-timeout 30s] [-debug]
//	       [-data-dir DIR] [-drain-timeout 30s] [-max-jobs N] [-job-ttl D] [-retries N]
//	       [-partition on|off] [-order topo|positional] [-partition-nodes N] [-reorder]
//	       [-sweep] [-induction-k K]
//
//	resynd -loadgen [-target http://host:8080] [-qps 2] [-duration 10s]
//	       [-circuits bbtas,s27,ex6] [-flow resyn] [-loadgen-verify] [-out BENCH_serve.json]
//	       [-loadgen-restart]
//
// With -loadgen and no -target, an in-process server is booted on an
// ephemeral port and torn down after the run, so a single command produces
// a self-contained BENCH_serve.json. -loadgen-restart runs the replay
// twice against the same -data-dir with a server restart in between; the
// report then carries both cache hit rates, showing how much of the cache
// the durable log preserved.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/guard"
	"repro/internal/reach"
	"repro/internal/serve"
	"repro/internal/sim"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent jobs (<=0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "queued jobs before submissions shed with 503")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "wall-clock budget per job, flows + verification (0 = unbounded)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per flow within a job (0 = unbounded)")
	passTimeout := flag.Duration("pass-timeout", 0, "wall-clock budget per pass within a flow (0 = unbounded)")
	debug := flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
	dataDir := flag.String("data-dir", "", "durable job log directory (empty = in-memory only, no crash recovery)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight jobs before exiting")
	maxJobs := flag.Int("max-jobs", 0, "evict least-recently-used finished jobs past this count (0 = unbounded)")
	jobTTL := flag.Duration("job-ttl", 0, "evict finished jobs this long after completion (0 = keep)")
	retries := flag.Int("retries", serve.DefaultRetryPolicy.Max, "retries for transiently failed jobs (deadline, contained panic)")
	partition := flag.String("partition", "on", "partitioned transition relations for state enumeration: on | off")
	order := flag.String("order", "topo", "BDD variable order: topo | positional")
	partitionNodes := flag.Int("partition-nodes", 0, "cluster node-size threshold for -partition on (0 = default)")
	reorder := flag.Bool("reorder", false, "enable dynamic BDD variable reordering (sifting) on node-count blowup")
	simCycles := flag.Int("sim-cycles", sim.DefaultSpotCheck.CLI.Cycles, "random-simulation cycles for the verification fallback")
	sweepOn := flag.Bool("sweep", false, "default every request to SAT-based sequential sweeping (folded into the job content address)")
	inductionK := flag.Int("induction-k", 0, "default induction depth for requests that leave induction_k unset (0 = engine default)")
	version := flag.Bool("version", false, "print version and exit")

	loadgen := flag.Bool("loadgen", false, "run the load generator instead of serving")
	target := flag.String("target", "", "loadgen: base URL of a running resynd (empty = boot an in-process server)")
	qps := flag.Float64("qps", 2, "loadgen: submissions per second")
	duration := flag.Duration("duration", 10*time.Second, "loadgen: submission window")
	circuits := flag.String("circuits", "", "loadgen: comma-separated bench circuits (default bbtas,s27,ex6)")
	flow := flag.String("flow", "resyn", "loadgen: flow submitted with every request")
	lgVerify := flag.Bool("loadgen-verify", false, "loadgen: request verification on every job")
	lgRestart := flag.Bool("loadgen-restart", false, "loadgen: run the replay twice with a server restart in between (requires in-process server + -data-dir)")
	out := flag.String("out", "BENCH_serve.json", "loadgen: output report file")
	flag.Parse()

	if *version {
		fmt.Println("resynd", buildinfo.Version())
		return
	}
	reachLim, err := reach.FlagLimits(reach.DefaultLimits, *partition, *order, *partitionNodes, *reorder)
	if err != nil {
		fatal(err)
	}
	cfg := serve.Config{
		Workers:    *workers,
		Queue:      *queue,
		Budget:     guard.Budget{Job: *jobTimeout, Flow: *timeout, Pass: *passTimeout},
		Reach:      reachLim,
		SimCycles:  *simCycles,
		Sweep:      *sweepOn,
		InductionK: *inductionK,
		Version:    buildinfo.Version(),
		DataDir:    *dataDir,
		MaxJobs:    *maxJobs,
		JobTTL:     *jobTTL,
		Retry:      serve.RetryPolicy{Max: *retries},
	}

	if *loadgen {
		if err := runLoadgen(cfg, *target, *qps, *duration, *circuits, *flow, *lgVerify, *lgRestart, *out, *debug); err != nil {
			fatal(err)
		}
		return
	}

	s, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		fmt.Printf("resynd: recovered job log: %s\n", s.Recovery())
	}
	stopSampler := s.Registry().StartRuntimeSampler(5 * time.Second)
	defer stopSampler()

	srv := &http.Server{Addr: *addr, Handler: s.Handler(*debug)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("resynd %s listening on %s (workers=%d queue=%d data-dir=%q debug=%v)\n",
		buildinfo.Version(), *addr, *workers, *queue, *dataDir, *debug)

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			s.Close()
			fatal(err)
		}
	case <-ctx.Done():
		// Graceful drain: refuse new submissions (503 + Retry-After) while
		// the listener is still up so load balancers see the refusals, let
		// SSE subscribers get their shutdown frame, finish in-flight jobs,
		// sync the log, exit 0.
		fmt.Println("resynd: draining (SIGTERM)")
		s.StartDrain()
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		srv.Shutdown(drainCtx)
		if err := s.Shutdown(drainCtx); err != nil {
			fmt.Fprintf(os.Stderr, "resynd: drain timeout: %v (log synced, interrupted jobs will re-run on next boot)\n", err)
		} else {
			fmt.Println("resynd: drained cleanly")
		}
	}
	s.Close()
}

// runLoadgen replays benchmark traffic against target (or an in-process
// server when target is empty) and writes the bench_serve/v2 report. With
// restart, the replay runs twice against the same data dir with a full
// server restart in between; the final report's cache_hit_rate is the
// post-restart phase and cache_hit_rate_pre_restart the first phase, so
// the artifact shows the durable log preserving the result cache.
func runLoadgen(cfg serve.Config, target string, qps float64, duration time.Duration, circuits, flow string, verify, restart bool, out string, debug bool) error {
	var names []string
	if circuits != "" {
		for _, n := range strings.Split(circuits, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if restart && target != "" {
		return errors.New("loadgen: -loadgen-restart needs the in-process server (drop -target)")
	}
	if restart && cfg.DataDir == "" {
		return errors.New("loadgen: -loadgen-restart needs -data-dir (nothing survives a restart without the job log)")
	}

	load := func(target string) (*serve.LoadReport, error) {
		return serve.RunLoad(serve.LoadConfig{
			Target:   target,
			QPS:      qps,
			Duration: duration,
			Circuits: names,
			Flow:     flow,
			Verify:   verify,
			Log:      os.Stderr,
		})
	}

	var rep *serve.LoadReport
	if target != "" {
		var err error
		if rep, err = load(target); err != nil {
			return err
		}
	} else {
		phases := 1
		if restart {
			phases = 2
		}
		var pre float64
		for phase := 1; phase <= phases; phase++ {
			s, err := serve.New(cfg)
			if err != nil {
				return err
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				s.Close()
				return err
			}
			srv := &http.Server{Handler: s.Handler(debug)}
			go srv.Serve(ln)
			url := "http://" + ln.Addr().String()
			if phase == 1 {
				fmt.Printf("resynd loadgen: in-process server at %s\n", url)
			} else {
				fmt.Printf("resynd loadgen: restarted at %s (%s)\n", url, s.Recovery())
			}
			rep, err = load(url)
			srv.Close()
			s.Close()
			if err != nil {
				return err
			}
			if phase == 1 && restart {
				pre = rep.CacheHitRate
			}
		}
		if restart {
			rep.CacheHitRatePreRestart = pre
		}
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d jobs, p50 %.1fms p99 %.1fms, %.2f jobs/s, cache hit rate %.2f\n",
		out, rep.Completed, rep.LatencyMsP50, rep.LatencyMsP99, rep.JobsPerSec, rep.CacheHitRate)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "resynd:", err)
	os.Exit(1)
}
