// Command retime applies Leiserson–Saxe retiming to a BLIF circuit:
// min-period (default) or constrained min-area at a given clock target.
//
// Usage:
//
//	retime -in circuit.blif [-minarea -period 3.0] [-out out.blif]
//	       [-partition on|off] [-order topo|positional] [-partition-nodes N] [-reorder]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/blif"
	"repro/internal/buildinfo"
	"repro/internal/reach"
	"repro/internal/retime"
	"repro/internal/seqverify"
	"repro/internal/sim"
)

func main() {
	in := flag.String("in", "", "input BLIF file")
	minarea := flag.Bool("minarea", false, "min-area retiming under -period instead of min-period")
	period := flag.Float64("period", 0, "clock target for -minarea (0 = current period)")
	out := flag.String("out", "", "output BLIF file")
	verify := flag.Bool("verify", true, "verify the result against the input")
	partition := flag.String("partition", "on", "partitioned transition relations for exact verification: on | off")
	order := flag.String("order", "topo", "BDD variable order: topo | positional")
	partitionNodes := flag.Int("partition-nodes", 0, "cluster node-size threshold for -partition on (0 = default)")
	reorder := flag.Bool("reorder", false, "enable dynamic BDD variable reordering (sifting) on node-count blowup")
	simCycles := flag.Int("sim-cycles", sim.DefaultSpotCheck.CLI.Cycles, "random-simulation cycles for the -verify fallback when the state space is too large for the exact check")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println("retime", buildinfo.Version())
		return
	}
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	reachLim, err := reach.FlagLimits(reach.DefaultLimits, *partition, *order, *partitionNodes, *reorder)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	src, err := blif.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("input: %s (%v)\n", src.Name, src.Stat())

	var result = src
	if *minarea {
		c := *period
		if c == 0 {
			g, err := retime.BuildGraph(src, nil)
			if err != nil {
				fatal(err)
			}
			c, err = g.Period(nil)
			if err != nil {
				fatal(err)
			}
		}
		ret, info, err := retime.MinAreaUnderPeriod(src, nil, c)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("min-area @ %.2f: %v\n", c, info)
		result = ret
	} else {
		ret, info, err := retime.MinPeriod(src, nil)
		if err != nil {
			fatal(fmt.Errorf("%w (the paper reports the same failure mode for several benchmarks)", err))
		}
		fmt.Printf("min-period: %v\n", info)
		result = ret
	}
	if *verify {
		err := seqverify.Equivalent(src, result, seqverify.Options{Limits: reachLim})
		switch {
		case err == nil:
			fmt.Println("verify: exact equivalence PASSED")
		case err == seqverify.ErrTooLarge:
			if serr := sim.RandomEquivalent(src, result, 0, *simCycles, sim.DefaultSpotCheck.CLI.Seed); serr != nil {
				fatal(serr)
			}
			fmt.Printf("verify: %d-cycle random simulation PASSED\n", *simCycles)
		default:
			fatal(err)
		}
	}
	if *out != "" {
		g, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := blif.Write(g, result); err != nil {
			fatal(err)
		}
		g.Close()
		fmt.Printf("wrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "retime:", err)
	os.Exit(1)
}
